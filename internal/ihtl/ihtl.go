// Package ihtl implements in-Hub Temporal Locality blocking (iHTL,
// Koohi Esfahani et al., ICPP'21), the traversal the paper presents in
// §VIII-A as the answer to its own finding that reordering algorithms
// cannot fix the locality of hub vertices (§VI-D):
//
//   - the incoming edges of the strongest in-hubs are extracted into
//     dense *flipped blocks* that are processed in the push direction,
//     accumulating into a compact per-block array sized to fit the cache
//     (this is also the answer to §VI-F: unlike RAs, iHTL sizes its
//     blocks from the cache capacity, so the cache is actually used);
//   - the remaining *sparse block* is processed in the ordinary pull
//     direction.
//
// Because the flipped blocks read source data sequentially and write only
// into a cache-resident accumulator, the random accesses that in-hubs
// otherwise cause disappear.
package ihtl

import (
	"fmt"
	"sort"

	"graphlocality/internal/graph"
)

// NoHub marks vertices that are not selected as in-hubs.
const NoHub = ^uint32(0)

// Config controls block construction.
type Config struct {
	// CacheBytes is the capacity budget for one flipped block's
	// accumulator (8 bytes per in-hub). Hubs beyond one block's budget
	// spill into further blocks.
	CacheBytes uint64
	// MinInDegree is the in-degree bar for hub selection; 0 uses the
	// paper's hub threshold √|V|.
	MinInDegree uint32
}

// Blocked is a graph partitioned into flipped blocks plus a sparse block.
type Blocked struct {
	g *graph.Graph

	// hubs lists the selected in-hub vertices, strongest first; hubOf
	// maps a vertex to its index in hubs, or NoHub.
	hubs  []uint32
	hubOf []uint32

	blocks []flippedBlock

	// sparse CSC: in-edges of non-hub vertices.
	sparseOff []uint64
	sparseAdj []uint32
}

// flippedBlock holds the in-edges of hubs [HubLo, HubHi) grouped by
// source vertex in ascending source order.
type flippedBlock struct {
	HubLo, HubHi uint32 // indices into hubs
	srcOff       []uint64
	srcIDs       []uint32 // sources with ≥1 edge into this block, ascending
	targets      []uint32 // block-local hub indices (0-based from HubLo)
}

// Build selects in-hubs and constructs the flipped and sparse blocks.
func Build(g *graph.Graph, cfg Config) *Blocked {
	n := g.NumVertices()
	b := &Blocked{g: g, hubOf: make([]uint32, n)}
	for i := range b.hubOf {
		b.hubOf[i] = NoHub
	}
	minDeg := cfg.MinInDegree
	if minDeg == 0 {
		minDeg = uint32(g.HubThreshold())
	}
	// Hub selection: all vertices with in-degree > minDeg, strongest
	// first.
	order := graph.VerticesByDegreeDesc(g.InDegrees())
	for _, v := range order {
		if g.InDegree(v) <= minDeg {
			break
		}
		b.hubOf[v] = uint32(len(b.hubs))
		b.hubs = append(b.hubs, v)
	}

	// Block budget: accumulator entries per flipped block.
	perBlock := uint32(cfg.CacheBytes / 8)
	if perBlock < 1 {
		perBlock = 1
	}

	// Construct flipped blocks.
	for lo := uint32(0); lo < uint32(len(b.hubs)); lo += perBlock {
		hi := lo + perBlock
		if hi > uint32(len(b.hubs)) {
			hi = uint32(len(b.hubs))
		}
		b.blocks = append(b.blocks, b.buildBlock(lo, hi))
	}

	// Sparse CSC: in-edges of non-hubs.
	b.sparseOff = make([]uint64, n+1)
	for v := uint32(0); v < n; v++ {
		if b.hubOf[v] == NoHub {
			b.sparseOff[v+1] = b.sparseOff[v] + uint64(g.InDegree(v))
		} else {
			b.sparseOff[v+1] = b.sparseOff[v]
		}
	}
	b.sparseAdj = make([]uint32, b.sparseOff[n])
	var cur uint64
	for v := uint32(0); v < n; v++ {
		if b.hubOf[v] == NoHub {
			cur += uint64(copy(b.sparseAdj[cur:], g.InNeighbors(v)))
		}
	}
	return b
}

// buildBlock groups the in-edges of hubs [lo,hi) by source.
func (b *Blocked) buildBlock(lo, hi uint32) flippedBlock {
	g := b.g
	fb := flippedBlock{HubLo: lo, HubHi: hi}
	// Count edges per source.
	counts := make(map[uint32]uint32)
	for hid := lo; hid < hi; hid++ {
		for _, u := range g.InNeighbors(b.hubs[hid]) {
			counts[u]++
		}
	}
	// Sources ascending.
	fb.srcIDs = make([]uint32, 0, len(counts))
	for u := range counts {
		fb.srcIDs = append(fb.srcIDs, u)
	}
	sort.Slice(fb.srcIDs, func(i, j int) bool { return fb.srcIDs[i] < fb.srcIDs[j] })
	fb.srcOff = make([]uint64, len(fb.srcIDs)+1)
	index := make(map[uint32]uint32, len(counts))
	for i, u := range fb.srcIDs {
		index[u] = uint32(i)
		fb.srcOff[i+1] = fb.srcOff[i] + uint64(counts[u])
	}
	fb.targets = make([]uint32, fb.srcOff[len(fb.srcIDs)])
	cur := make([]uint64, len(fb.srcIDs))
	copy(cur, fb.srcOff[:len(fb.srcIDs)])
	for hid := lo; hid < hi; hid++ {
		local := hid - lo
		for _, u := range g.InNeighbors(b.hubs[hid]) {
			i := index[u]
			fb.targets[cur[i]] = local
			cur[i]++
		}
	}
	return fb
}

// NumHubs returns the number of selected in-hubs.
func (b *Blocked) NumHubs() int { return len(b.hubs) }

// NumBlocks returns the number of flipped blocks.
func (b *Blocked) NumBlocks() int { return len(b.blocks) }

// FlippedEdges returns the number of edges routed through flipped blocks.
func (b *Blocked) FlippedEdges() uint64 {
	var e uint64
	for _, fb := range b.blocks {
		e += uint64(len(fb.targets))
	}
	return e
}

// SparseEdges returns the number of edges in the sparse block.
func (b *Blocked) SparseEdges() uint64 { return uint64(len(b.sparseAdj)) }

// SpMV performs one iteration: dst[v] = Σ src[u] over v's in-neighbours,
// with hub destinations computed through the flipped blocks (push) and
// the rest through the sparse block (pull). dst and src must have |V|
// elements.
func (b *Blocked) SpMV(src, dst []float64) {
	// Flipped blocks: push into a compact accumulator.
	for _, fb := range b.blocks {
		acc := make([]float64, fb.HubHi-fb.HubLo)
		for i, u := range fb.srcIDs {
			x := src[u]
			for _, t := range fb.targets[fb.srcOff[i]:fb.srcOff[i+1]] {
				acc[t] += x
			}
		}
		for local, sum := range acc {
			dst[b.hubs[fb.HubLo+uint32(local)]] = sum
		}
	}
	// Sparse block: ordinary pull.
	n := b.g.NumVertices()
	for v := uint32(0); v < n; v++ {
		if b.hubOf[v] != NoHub {
			continue
		}
		sum := 0.0
		for _, u := range b.sparseAdj[b.sparseOff[v]:b.sparseOff[v+1]] {
			sum += src[u]
		}
		dst[v] = sum
	}
}

// String summarizes the blocking.
func (b *Blocked) String() string {
	return fmt.Sprintf("iHTL{hubs=%d, blocks=%d, flipped=%d, sparse=%d}",
		b.NumHubs(), b.NumBlocks(), b.FlippedEdges(), b.SparseEdges())
}
