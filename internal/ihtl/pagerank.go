package ihtl

// PageRank runs the PageRank power iteration on the blocked traversal —
// the application the iHTL paper itself evaluates. Results are identical
// to spmv.PageRank on the same graph; only the traversal structure (and
// therefore its locality) differs.
func PageRank(b *Blocked, iters int, d float64) []float64 {
	g := b.g
	n := int(g.NumVertices())
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	contrib := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			if od := g.OutDegree(uint32(v)); od > 0 {
				contrib[v] = rank[v] / float64(od)
			} else {
				contrib[v] = 0
			}
		}
		b.SpMV(contrib, next)
		base := (1 - d) / float64(n)
		for v := 0; v < n; v++ {
			rank[v] = base + d*next[v]
		}
	}
	return rank
}
