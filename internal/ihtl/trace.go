package ihtl

import "graphlocality/internal/trace"

// Layout extends the SpMV address layout with the per-block accumulator
// array, placed on its own extent after the standard arrays. The
// accumulator is the compact region iHTL keeps cache-resident.
type Layout struct {
	trace.Layout
	AccBase uint64
}

// NewLayout builds the iHTL layout for the blocked graph.
func NewLayout(b *Blocked) Layout {
	base := trace.NewLayout(b.g)
	const align = 1 << 21
	end := base.NewDataAddr(b.g.NumVertices()-1) + trace.VertexDataBytes
	if b.g.NumVertices() == 0 {
		end = base.NewDataBase
	}
	return Layout{
		Layout:  base,
		AccBase: (end + align - 1) &^ uint64(align-1),
	}
}

// AccAddr returns the address of the block-local accumulator entry.
func (l Layout) AccAddr(local uint32) uint64 {
	return l.AccBase + uint64(local)*trace.VertexDataBytes
}

// Trace generates the memory-access stream of one iHTL SpMV iteration,
// mirroring trace.Run for the plain traversals: flipped blocks issue a
// sequential read of each source's data plus writes into the compact
// accumulator; the sparse block issues the ordinary pull pattern.
func Trace(b *Blocked, l Layout, sink trace.Sink) {
	// Flipped blocks (push into accumulator).
	for _, fb := range b.blocks {
		for i, u := range fb.srcIDs {
			sink(trace.Access{Addr: l.OldDataAddr(u), Kind: trace.KindVertexRead, Vertex: u, Dest: u})
			for ei := fb.srcOff[i]; ei < fb.srcOff[i+1]; ei++ {
				t := fb.targets[ei]
				// Topology stream for the target list.
				sink(trace.Access{Addr: l.EdgeAddr(ei), Kind: trace.KindEdges, Vertex: u, Dest: u})
				sink(trace.Access{Addr: l.AccAddr(t), Kind: trace.KindVertexWrite, Write: true,
					Vertex: b.hubs[fb.HubLo+t], Dest: u})
			}
		}
		// Flush the accumulator to the hubs' new data (sequential over the
		// accumulator, random over Di+1).
		for local := fb.HubLo; local < fb.HubHi; local++ {
			sink(trace.Access{Addr: l.AccAddr(local - fb.HubLo), Kind: trace.KindVertexRead,
				Vertex: b.hubs[local], Dest: b.hubs[local]})
			sink(trace.Access{Addr: l.NewDataAddr(b.hubs[local]), Kind: trace.KindVertexWrite,
				Write: true, Vertex: b.hubs[local], Dest: b.hubs[local]})
		}
	}
	// Sparse block (pull).
	n := b.g.NumVertices()
	for v := uint32(0); v < n; v++ {
		if b.hubOf[v] != NoHub {
			continue
		}
		sink(trace.Access{Addr: l.OffsetsAddr(v), Kind: trace.KindOffsets, Vertex: v, Dest: v})
		for ei := b.sparseOff[v]; ei < b.sparseOff[v+1]; ei++ {
			u := b.sparseAdj[ei]
			sink(trace.Access{Addr: l.EdgeAddr(ei), Kind: trace.KindEdges, Vertex: v, Dest: v})
			sink(trace.Access{Addr: l.OldDataAddr(u), Kind: trace.KindVertexRead, Vertex: u, Dest: v})
		}
		sink(trace.Access{Addr: l.NewDataAddr(v), Kind: trace.KindVertexWrite, Write: true, Vertex: v, Dest: v})
	}
}
