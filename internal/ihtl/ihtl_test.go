package ihtl

import (
	"math"
	"strings"
	"testing"

	"graphlocality/internal/cachesim"
	"graphlocality/internal/gen"
	"graphlocality/internal/graph"
	"graphlocality/internal/spmv"
	"graphlocality/internal/trace"
)

func build(g *graph.Graph) *Blocked {
	return Build(g, Config{CacheBytes: 1 << 14})
}

func TestBuildPartitionsEdges(t *testing.T) {
	g := gen.WebGraph(gen.DefaultWebGraph(1<<12, 8, 3))
	b := build(g)
	if b.NumHubs() == 0 {
		t.Fatal("no hubs selected on a web graph")
	}
	if b.FlippedEdges()+b.SparseEdges() != g.NumEdges() {
		t.Fatalf("flipped %d + sparse %d != |E| %d",
			b.FlippedEdges(), b.SparseEdges(), g.NumEdges())
	}
	// Hubs have no sparse in-edges; non-hubs no flipped in-edges.
	var hubIn uint64
	for _, h := range b.hubs {
		hubIn += uint64(g.InDegree(h))
	}
	if hubIn != b.FlippedEdges() {
		t.Errorf("hub in-edges %d != flipped edges %d", hubIn, b.FlippedEdges())
	}
	if !strings.Contains(b.String(), "iHTL{") {
		t.Error("String broken")
	}
}

func TestBlockBudgetRespected(t *testing.T) {
	g := gen.WebGraph(gen.DefaultWebGraph(1<<13, 8, 5))
	cacheBytes := uint64(64 * 8) // 64 accumulator entries
	b := Build(g, Config{CacheBytes: cacheBytes})
	if b.NumHubs() > 64 && b.NumBlocks() < 2 {
		t.Errorf("hub count %d exceeds one block's budget but only %d blocks",
			b.NumHubs(), b.NumBlocks())
	}
	for _, fb := range b.blocks {
		if fb.HubHi-fb.HubLo > 64 {
			t.Errorf("block holds %d hubs, budget 64", fb.HubHi-fb.HubLo)
		}
	}
}

func TestSpMVMatchesReference(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.WebGraph(gen.DefaultWebGraph(1<<12, 8, 7)),
		gen.SocialNetwork(11, 12, 7),
		gen.Star(500),
		gen.Ring(64),
		graph.FromEdges(3, nil),
	} {
		b := Build(g, Config{CacheBytes: 512 * 8})
		n := g.NumVertices()
		src := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range src {
			src[i] = float64(i%7) + 1
		}
		b.SpMV(src, dst)
		for v := uint32(0); v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(v) {
				sum += src[u]
			}
			want[v] = sum
		}
		for v := range want {
			if math.Abs(dst[v]-want[v]) > 1e-9 {
				t.Fatalf("|V|=%d: dst[%d] = %v, want %v", n, v, dst[v], want[v])
			}
		}
	}
}

func TestTraceAccessCounts(t *testing.T) {
	g := gen.WebGraph(gen.DefaultWebGraph(1<<11, 8, 9))
	b := build(g)
	l := NewLayout(b)
	var vertexReads, accWrites uint64
	Trace(b, l, func(a trace.Access) {
		switch a.Kind {
		case trace.KindVertexRead:
			vertexReads++
		case trace.KindVertexWrite:
			if a.Addr >= l.AccBase {
				accWrites++
			}
		}
	})
	if accWrites != b.FlippedEdges() {
		t.Errorf("accumulator writes %d != flipped edges %d", accWrites, b.FlippedEdges())
	}
	if vertexReads == 0 {
		t.Error("no vertex reads")
	}
}

func TestLayoutAccDisjoint(t *testing.T) {
	g := gen.Ring(1000)
	b := build(g)
	l := NewLayout(b)
	if l.AccBase <= l.NewDataAddr(999) {
		t.Error("accumulator overlaps vertex data")
	}
	if l.AccAddr(1) != l.AccAddr(0)+trace.VertexDataBytes {
		t.Error("AccAddr stride wrong")
	}
}

// The headline §VIII-A claim: on a web graph whose in-hubs defeat RAs,
// iHTL's traversal misses less than the plain pull traversal under the
// same cache.
func TestIHTLBeatsPlainPullOnWebGraph(t *testing.T) {
	g := gen.WebGraph(gen.DefaultWebGraph(1<<13, 8, 4))
	cfg := cachesim.ScaledL3(g.NumVertices(), 0.04)
	b := Build(g, Config{CacheBytes: uint64(cfg.SizeBytes() / 2)})
	if b.NumHubs() == 0 {
		t.Fatal("no hubs")
	}

	plain := cachesim.New(cfg)
	tl := trace.NewLayout(g)
	trace.Run(g, tl, trace.Pull, func(a trace.Access) { plain.Access(a.Addr, a.Write) })

	blocked := cachesim.New(cfg)
	il := NewLayout(b)
	Trace(b, il, func(a trace.Access) { blocked.Access(a.Addr, a.Write) })

	if blocked.Stats().Misses >= plain.Stats().Misses {
		t.Errorf("iHTL misses %d not below plain pull %d",
			blocked.Stats().Misses, plain.Stats().Misses)
	}
}

func TestPageRankMatchesEngine(t *testing.T) {
	g := gen.WebGraph(gen.DefaultWebGraph(1<<11, 8, 6))
	b := Build(g, Config{CacheBytes: 256 * 8})
	got := PageRank(b, 8, 0.85)
	want := spmv.PageRank(spmv.New(g, 2), 8, 0.85)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12*(1+math.Abs(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if PageRank(Build(graph.FromEdges(0, nil), Config{CacheBytes: 64}), 3, 0.85) != nil {
		t.Error("empty graph PageRank should be nil")
	}
}

func TestBuildNoHubsOnUniformGraph(t *testing.T) {
	g := gen.Ring(100)
	b := build(g)
	if b.NumHubs() != 0 {
		t.Errorf("ring has no hubs, got %d", b.NumHubs())
	}
	// SpMV still works purely through the sparse block.
	src := make([]float64, 100)
	dst := make([]float64, 100)
	for i := range src {
		src[i] = 1
	}
	b.SpMV(src, dst)
	for v, x := range dst {
		if x != 1 {
			t.Fatalf("dst[%d] = %v", v, x)
		}
	}
}
