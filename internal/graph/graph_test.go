package graph

import (
	"bytes"
	"strings"
	"testing"
)

// diamond returns a small fixed test graph:
//
//	0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
func diamond() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantOut := [][]uint32{{1, 2}, {3}, {3}, {0}}
	for v := uint32(0); v < 4; v++ {
		got := g.OutNeighbors(v)
		if len(got) != len(wantOut[v]) {
			t.Fatalf("OutNeighbors(%d) = %v, want %v", v, got, wantOut[v])
		}
		for i := range got {
			if got[i] != wantOut[v][i] {
				t.Fatalf("OutNeighbors(%d) = %v, want %v", v, got, wantOut[v])
			}
		}
	}
	wantIn := [][]uint32{{3}, {0}, {0}, {1, 2}}
	for v := uint32(0); v < 4; v++ {
		got := g.InNeighbors(v)
		if len(got) != len(wantIn[v]) {
			t.Fatalf("InNeighbors(%d) = %v, want %v", v, got, wantIn[v])
		}
		for i := range got {
			if got[i] != wantIn[v][i] {
				t.Fatalf("InNeighbors(%d) = %v, want %v", v, got, wantIn[v])
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	g := diamond()
	wantOut := []uint32{2, 1, 1, 1}
	wantIn := []uint32{1, 1, 1, 2}
	for v := uint32(0); v < 4; v++ {
		if g.OutDegree(v) != wantOut[v] {
			t.Errorf("OutDegree(%d) = %d, want %d", v, g.OutDegree(v), wantOut[v])
		}
		if g.InDegree(v) != wantIn[v] {
			t.Errorf("InDegree(%d) = %d, want %d", v, g.InDegree(v), wantIn[v])
		}
	}
	if g.MaxOutDegree() != 2 || g.MaxInDegree() != 2 {
		t.Errorf("max degrees = (%d,%d), want (2,2)", g.MaxOutDegree(), g.MaxInDegree())
	}
	if got := g.AverageDegree(); got != 1.25 {
		t.Errorf("AverageDegree = %v, want 1.25", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate empty: %v", err)
	}
	if g.AverageDegree() != 0 {
		t.Errorf("AverageDegree of empty = %v, want 0", g.AverageDegree())
	}
}

func TestIsolatedVertices(t *testing.T) {
	// 5 vertices, only one edge.
	g := FromEdges(5, []Edge{{0, 4}})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := uint32(1); v < 4; v++ {
		if g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 3, true}, {3, 0, true},
		{1, 0, false}, {0, 3, false}, {2, 1, false}, {3, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	g := diamond()
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate reverse: %v", err)
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.Dst, e.Src) {
			t.Errorf("reverse missing edge (%d,%d)", e.Dst, e.Src)
		}
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("reverse |E| = %d, want %d", r.NumEdges(), g.NumEdges())
	}
	// Double reverse is the original.
	if !g.Equal(r.Reverse()) {
		t.Error("double reverse differs from original")
	}
}

func TestUndirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {1, 2}})
	u := g.Undirected()
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate undirected: %v", err)
	}
	// (0,1) existed both ways: dedup to single edge each direction.
	// (1,2) becomes (1,2) and (2,1).
	if u.NumEdges() != 4 {
		t.Fatalf("undirected |E| = %d, want 4", u.NumEdges())
	}
	for _, e := range u.Edges() {
		if !u.HasEdge(e.Dst, e.Src) {
			t.Errorf("undirected graph not symmetric at (%d,%d)", e.Src, e.Dst)
		}
	}
}

func TestDedup(t *testing.T) {
	g := FromEdgesDedup(2, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}})
	if g.NumEdges() != 2 {
		t.Fatalf("dedup |E| = %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoops(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 0}, {0, 1}, {1, 1}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(1, 1) {
		t.Error("self loops lost")
	}
	if g.InDegree(0) != 1 || g.OutDegree(0) != 2 {
		t.Errorf("degrees with self loop: in=%d out=%d", g.InDegree(0), g.OutDegree(0))
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}, {0, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("parallel edges collapsed: |E| = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 {
		t.Error("parallel edge degrees wrong")
	}
}

func TestFromCSR(t *testing.T) {
	off := []uint64{0, 2, 3, 3}
	adj := []uint32{1, 2, 0}
	g, err := FromCSR(3, off, adj)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 0) {
		t.Error("FromCSR lost edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCSRErrors(t *testing.T) {
	if _, err := FromCSR(2, []uint64{0, 1}, []uint32{0}); err == nil {
		t.Error("short offsets accepted")
	}
	if _, err := FromCSR(2, []uint64{0, 1, 3}, []uint32{0}); err == nil {
		t.Error("bad tail offset accepted")
	}
	if _, err := FromCSR(2, []uint64{0, 1, 1}, []uint32{7}); err == nil {
		t.Error("out-of-range neighbour accepted")
	}
	if _, err := FromCSR(2, []uint64{0, 2, 1}, []uint32{0}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
}

func TestRemoveZeroDegree(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 2}, {2, 5}})
	// vertices 1, 3, 4 are isolated.
	h, mapping := g.RemoveZeroDegree()
	if h.NumVertices() != 3 {
		t.Fatalf("compacted |V| = %d, want 3", h.NumVertices())
	}
	if h.NumEdges() != 2 {
		t.Fatalf("compacted |E| = %d, want 2", h.NumEdges())
	}
	if mapping[1] != NoVertex || mapping[3] != NoVertex || mapping[4] != NoVertex {
		t.Error("isolated vertices not marked removed")
	}
	if mapping[0] != 0 || mapping[2] != 1 || mapping[5] != 2 {
		t.Errorf("mapping = %v", mapping)
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) {
		t.Error("edges not remapped")
	}
	// No-op when nothing is isolated.
	g2 := diamond()
	h2, _ := g2.RemoveZeroDegree()
	if h2 != g2 {
		t.Error("RemoveZeroDegree should return receiver unchanged when nothing to remove")
	}
}

func TestHubPredicates(t *testing.T) {
	// 10 vertices -> hub threshold sqrt(10) ~ 3.16: need degree >= 4.
	edges := []Edge{}
	for i := uint32(1); i <= 5; i++ {
		edges = append(edges, Edge{i, 0}) // vertex 0: in-degree 5 (in-hub)
		edges = append(edges, Edge{6, i}) // vertex 6: out-degree 5 (out-hub)
	}
	g := FromEdges(10, edges)
	if !g.IsInHub(0) {
		t.Error("vertex 0 should be an in-hub")
	}
	if g.IsOutHub(0) {
		t.Error("vertex 0 should not be an out-hub")
	}
	if !g.IsOutHub(6) {
		t.Error("vertex 6 should be an out-hub")
	}
	if g.IsInHub(6) {
		t.Error("vertex 6 should not be an in-hub")
	}
	if g.CountInHubs() != 1 || g.CountOutHubs() != 1 {
		t.Errorf("hub counts = (%d,%d), want (1,1)", g.CountInHubs(), g.CountOutHubs())
	}
}

func TestTopologyBytes(t *testing.T) {
	g := diamond()
	want := uint64(5*8 + 5*4) // 5 offsets (n+1), 5 edges
	if got := g.TopologyBytes(); got != want {
		t.Errorf("TopologyBytes = %d, want %d", got, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("binary round trip changed the graph")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("BOGUS data here")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("GL")); err == nil {
		t.Error("truncated magic accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("edge list round trip changed the graph")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n\n0 1\n1 2 extra-ignored\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("4294967295 0\n")); err == nil {
		t.Error("reserved/overflowing vertex ID accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 16777216\n")); err == nil {
		t.Error("ID above the text-format limit accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric src accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 b\n")); err == nil {
		t.Error("non-numeric dst accepted")
	}
	g, err := ReadEdgeList(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Error("empty input should produce empty graph")
	}
}

func TestEqual(t *testing.T) {
	a := diamond()
	b := diamond()
	if !a.Equal(b) {
		t.Error("identical graphs not Equal")
	}
	c := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 1}})
	if a.Equal(c) {
		t.Error("different graphs Equal")
	}
	d := FromEdges(5, a.Edges())
	if a.Equal(d) {
		t.Error("graphs with different |V| Equal")
	}
}

func TestStringer(t *testing.T) {
	s := diamond().String()
	if !strings.Contains(s, "|V|=4") || !strings.Contains(s, "|E|=5") {
		t.Errorf("String() = %q", s)
	}
}
