package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionCoversAllVertices(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 100, 500)
	for _, p := range []int{1, 2, 3, 7, 16, 200} {
		ranges := g.PartitionEdgeBalancedOut(p)
		var covered uint32
		for i, r := range ranges {
			if r.Lo != covered {
				t.Fatalf("p=%d: range %d starts at %d, want %d", p, i, r.Lo, covered)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("p=%d: empty range %d: %+v", p, i, r)
			}
			covered = r.Hi
		}
		if covered != g.NumVertices() {
			t.Fatalf("p=%d: partitions cover %d of %d vertices", p, covered, g.NumVertices())
		}
	}
}

func TestPartitionEdgeBalance(t *testing.T) {
	// A skewed graph: vertex 0 has most edges. Partitions must still
	// roughly balance edge counts.
	edges := []Edge{}
	for i := uint32(1); i < 1000; i++ {
		edges = append(edges, Edge{0, i})
	}
	for i := uint32(1); i < 500; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := FromEdges(1000, edges)
	ranges := g.PartitionEdgeBalancedOut(4)
	if len(ranges) < 2 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	// First partition holds the hub and should be a single vertex or few.
	if ranges[0].Len() > 500 {
		t.Errorf("hub partition too wide: %+v", ranges[0])
	}
}

func TestPartitionSmallGraph(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	ranges := g.PartitionEdgeBalancedOut(8)
	if len(ranges) > 2 {
		t.Errorf("more ranges than vertices: %d", len(ranges))
	}
	var covered uint32
	for _, r := range ranges {
		covered += r.Len()
	}
	if covered != 2 {
		t.Errorf("coverage = %d", covered)
	}
}

func TestPartitionInDirection(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 3}, {1, 3}, {2, 3}})
	ranges := g.PartitionEdgeBalancedIn(2)
	var covered uint32
	for _, r := range ranges {
		covered += r.Len()
	}
	if covered != 4 {
		t.Errorf("in-partition coverage = %d", covered)
	}
}

// Property: any partitioning is a disjoint contiguous cover, and with p
// parts, each part's edge count is at most ~(|E|/p + maxdeg).
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(200) + 1)
		g := randomGraph(rng, n, rng.Intn(1000))
		p := rng.Intn(10) + 1
		ranges := g.PartitionEdgeBalancedOut(p)
		var covered uint32
		maxDeg := uint64(g.MaxOutDegree())
		bound := g.NumEdges()/uint64(p) + maxDeg + 1
		for _, r := range ranges {
			if r.Lo != covered {
				return false
			}
			covered = r.Hi
			var e uint64
			for v := r.Lo; v < r.Hi; v++ {
				e += uint64(g.OutDegree(v))
			}
			// The last range may absorb the remainder; others obey the bound.
			if r.Hi != n && e > bound {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
