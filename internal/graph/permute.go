package graph

import "fmt"

// Permutation is a relabeling array as produced by a reordering algorithm
// (§II-E): it is indexed by the old ID of a vertex and specifies the new ID.
type Permutation []uint32

// Identity returns the identity permutation of n vertices.
func Identity(n uint32) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

// Validate checks that p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, nw := range p {
		if int(nw) >= len(p) {
			return fmt.Errorf("permutation: new ID %d of vertex %d out of range (n=%d)", nw, old, len(p))
		}
		if seen[nw] {
			return fmt.Errorf("permutation: new ID %d assigned twice", nw)
		}
		seen[nw] = true
	}
	return nil
}

// Inverse returns the inverse permutation: Inverse()[new] == old.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = uint32(old)
	}
	return inv
}

// Compose returns the permutation that first applies p and then q:
// result[v] = q[p[v]]. Both must have the same length.
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("graph: composing permutations of different sizes")
	}
	r := make(Permutation, len(p))
	for v := range p {
		r[v] = q[p[v]]
	}
	return r
}

// Relabel rebuilds the graph under the relabeling array perm (old→new), as
// a reordering algorithm's final step (§II-E): CSR and CSC are rebuilt with
// the new vertex IDs and re-sorted adjacency.
func (g *Graph) Relabel(perm Permutation) *Graph {
	if len(perm) != int(g.n) {
		panic(fmt.Sprintf("graph: permutation length %d != |V| %d", len(perm), g.n))
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		nv := perm[v]
		for _, u := range g.OutNeighbors(v) {
			edges = append(edges, Edge{nv, perm[u]})
		}
	}
	return FromEdges(g.n, edges)
}
