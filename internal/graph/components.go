package graph

// Connected-component utilities over the undirected view of a graph.
// SlashBurn's spoke detection and community numbering (§IV-A) are built on
// these, but they are generally useful substrate facilities.

// ConnectedComponents labels each vertex with a component ID in [0, k) over
// the undirected view of g (an edge in either direction connects). It
// returns the labels and component count. Labels are assigned in order of
// first discovery (ascending smallest vertex ID per component).
func (g *Graph) ConnectedComponents() ([]uint32, uint32) {
	return g.componentsFiltered(nil)
}

// ComponentsExcluding computes connected components of the subgraph induced
// by vertices where removed[v] == false. Removed vertices get label
// NoVertex. The undirected view is used.
func (g *Graph) ComponentsExcluding(removed []bool) ([]uint32, uint32) {
	return g.componentsFiltered(removed)
}

func (g *Graph) componentsFiltered(removed []bool) ([]uint32, uint32) {
	labels := make([]uint32, g.n)
	for i := range labels {
		labels[i] = NoVertex
	}
	var next uint32
	queue := make([]uint32, 0, 1024)
	for start := uint32(0); start < g.n; start++ {
		if labels[start] != NoVertex || (removed != nil && removed[start]) {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.OutNeighbors(v) {
				if labels[u] == NoVertex && (removed == nil || !removed[u]) {
					labels[u] = next
					queue = append(queue, u)
				}
			}
			for _, u := range g.InNeighbors(v) {
				if labels[u] == NoVertex && (removed == nil || !removed[u]) {
					labels[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return labels, next
}

// ComponentSizes returns, for labels produced by ConnectedComponents, the
// number of vertices in each component.
func ComponentSizes(labels []uint32, k uint32) []uint32 {
	sizes := make([]uint32, k)
	for _, l := range labels {
		if l != NoVertex {
			sizes[l]++
		}
	}
	return sizes
}

// GiantComponent returns the label of the component with the largest number
// of edges (the paper's GCC is "the community with the largest number of
// edges", §IV-A), counting an edge as belonging to a component when both
// endpoints carry its label. Ties break to the smaller label. It returns
// NoVertex when k == 0.
func (g *Graph) GiantComponent(labels []uint32, k uint32) uint32 {
	if k == 0 {
		return NoVertex
	}
	edgeCount := make([]uint64, k)
	for v := uint32(0); v < g.n; v++ {
		lv := labels[v]
		if lv == NoVertex {
			continue
		}
		for _, u := range g.OutNeighbors(v) {
			if labels[u] == lv {
				edgeCount[lv]++
			}
		}
	}
	best := uint32(0)
	for l := uint32(1); l < k; l++ {
		if edgeCount[l] > edgeCount[best] {
			best = l
		}
	}
	return best
}
