package graph

import (
	"errors"

	"graphlocality/internal/graph/segcsr"
	"graphlocality/internal/obs"
	"graphlocality/internal/store"
	"graphlocality/internal/vfs"
)

// Out-of-core graphs. WriteSegmented serializes a *Graph into the
// segmented compressed container format (internal/graph/segcsr);
// OpenSegmented opens one as a SegGraph, a Topology whose rows are
// decoded on demand through a byte-budgeted segment cache — so the
// trace generators and simulators stream graphs larger than memory
// through exactly the code paths they use for in-RAM graphs.

// SegmentedOptions configures WriteSegmented and OpenSegmented.
type SegmentedOptions struct {
	// SegmentVertices is the vertices per segment when writing
	// (0 = segcsr.DefaultSegmentVertices).
	SegmentVertices int
	// CacheBytes budgets the decoded-segment cache when opening
	// (0 = segcsr.DefaultCacheBytes). Peak resident decoded bytes never
	// exceed the budget.
	CacheBytes int64
	// Obs receives cache instrumentation (nil = none).
	Obs obs.Recorder
	// FS is the filesystem seam (nil = the OS passthrough). Chaos tests
	// inject faults here.
	FS vfs.FS
}

func (o SegmentedOptions) segOpts() segcsr.Options {
	return segcsr.Options{
		SegmentVertices: o.SegmentVertices,
		CacheBytes:      o.CacheBytes,
		Obs:             o.Obs,
	}
}

// WriteSegmented writes g to path in the segmented container format via
// the crash-safe atomic protocol, returning the compression stats
// (including the bytes/edge metric).
func WriteSegmented(g *Graph, path string, opts SegmentedOptions) (segcsr.WriteStats, error) {
	out := segcsr.CSR{Off: g.outOff, Adj: g.outAdj}
	in := segcsr.CSR{Off: g.inOff, Adj: g.inAdj}
	if g.n == 0 && g.outOff == nil {
		// The zero Graph has nil arrays; the format wants len-1 offsets.
		out = segcsr.CSR{Off: []uint64{0}}
		in = segcsr.CSR{Off: []uint64{0}}
	}
	return segcsr.Write(opts.FS, path, out, in, opts.segOpts())
}

// MeasureSegmented returns the stats WriteSegmented would produce
// without touching disk — the cheap path to the bytes/edge metric.
func MeasureSegmented(g *Graph, opts SegmentedOptions) segcsr.WriteStats {
	out := segcsr.CSR{Off: g.outOff, Adj: g.outAdj}
	in := segcsr.CSR{Off: g.inOff, Adj: g.inAdj}
	if g.n == 0 && g.outOff == nil {
		out = segcsr.CSR{Off: []uint64{0}}
		in = segcsr.CSR{Off: []uint64{0}}
	}
	return segcsr.Measure(out, in, opts.segOpts())
}

// SegGraph is a segment-backed Topology: dimensions and indexes in
// memory, adjacency on disk, decoded segments cached under a byte
// budget. Safe for concurrent readers. It is *not* a *Graph — code that
// needs random per-vertex access keeps taking *Graph; code that streams
// rows (the trace generators, the simulators) takes Topology and works
// with either.
type SegGraph struct {
	f *segcsr.File
}

// OpenSegmented opens the segmented graph at path on the real
// filesystem with default options.
func OpenSegmented(path string) (*SegGraph, error) {
	return OpenSegmentedOpts(path, SegmentedOptions{})
}

// OpenSegmentedOpts opens the segmented graph at path. The container
// table, metadata and segment indexes are fully verified here; a
// verification failure quarantines the file to path+store.CorruptSuffix
// (same discipline as the artifact store: a corrupt graph must not be
// half-readable on the next run) and returns the typed
// *store.IntegrityError with Quarantined set when the rename succeeded.
func OpenSegmentedOpts(path string, opts SegmentedOptions) (*SegGraph, error) {
	fsys := vfs.Of(opts.FS)
	f, err := segcsr.OpenFS(fsys, path, opts.segOpts())
	var ie *store.IntegrityError
	if errors.As(err, &ie) {
		if qerr := fsys.Rename(path, path+store.CorruptSuffix); qerr == nil {
			ie.Quarantined = path + store.CorruptSuffix
		}
		return nil, ie
	}
	if err != nil {
		return nil, err
	}
	return &SegGraph{f: f}, nil
}

// NumVertices returns |V|.
func (sg *SegGraph) NumVertices() uint32 { return sg.f.NumVertices() }

// NumEdges returns |E|.
func (sg *SegGraph) NumEdges() uint64 { return sg.f.NumEdges() }

// Rows implements Topology: stream decoded row spans of [lo, hi). On
// corruption discovered mid-stream the cursor ends early; Err reports
// the cause.
func (sg *SegGraph) Rows(in bool, lo, hi uint32) RowCursor {
	return sg.f.Rows(in, lo, hi)
}

// PartitionEdgeBalanced implements Topology with boundaries identical to
// *Graph.PartitionEdgeBalanced on the same graph — required for the
// emulated-parallel interleaved access stream to be representation-
// independent.
func (sg *SegGraph) PartitionEdgeBalanced(in bool, p int) []Range {
	return partitionByOffsetFn(func(v uint32) uint64 { return sg.f.EdgeOffset(in, v) }, sg.f.NumVertices(), p)
}

// CacheStats returns the decoded-segment cache's resident and peak byte
// counts and resident segment count.
func (sg *SegGraph) CacheStats() (resident, peak int64, segments int) {
	return sg.f.CacheStats()
}

// Err returns the first verification failure any cursor or partition
// query on this graph has hit, or nil. Callers that just streamed a
// graph end-to-end check it once at the end.
func (sg *SegGraph) Err() error { return sg.f.Err() }

// Path returns the path the graph was opened from.
func (sg *SegGraph) Path() string { return sg.f.Path() }

// Close releases the underlying file.
func (sg *SegGraph) Close() error { return sg.f.Close() }

var _ Topology = (*SegGraph)(nil)
var _ Topology = (*Graph)(nil)
