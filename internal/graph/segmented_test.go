package graph

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphlocality/internal/store"
)

func randGraph(rng *rand.Rand, n uint32, m int) *Graph {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: uint32(rng.Intn(int(n))), Dst: uint32(rng.Intn(int(n)))}
	}
	return FromEdges(n, edges)
}

// collectTopology materializes one direction of any Topology back into
// raw offset/adjacency arrays through the cursor API.
func collectTopology(t *testing.T, g Topology, in bool) ([]uint64, []uint32) {
	t.Helper()
	n := g.NumVertices()
	off := make([]uint64, 0, n+1)
	adj := make([]uint32, 0)
	cur := g.Rows(in, 0, n)
	for {
		base, o, a, ok := cur.Next()
		if !ok {
			break
		}
		if len(off) == 0 {
			if base != 0 {
				t.Fatalf("first span starts at %d", base)
			}
			off = append(off, o[0])
		}
		off = append(off, o[1:]...)
		adj = append(adj, a...)
	}
	if len(off) == 0 {
		off = append(off, 0)
	}
	return off, adj
}

// TestWriteOpenSegmentedIdentity is the satellite round-trip property:
// WriteSegmented→OpenSegmented preserves CSR/CSC offsets and edge
// content exactly, across graph shapes and segment sizes.
func TestWriteOpenSegmentedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		n uint32
		m int
	}{{4, 6}, {97, 400}, {256, 64}, {1, 3}} {
		g := randGraph(rng, tc.n, tc.m)
		for _, segVerts := range []int{1, 5, 64, int(tc.n) + 7} {
			path := filepath.Join(t.TempDir(), "g.segcsr")
			stats, err := WriteSegmented(g, path, SegmentedOptions{SegmentVertices: segVerts})
			if err != nil {
				t.Fatalf("n=%d seg=%d: WriteSegmented: %v", tc.n, segVerts, err)
			}
			if stats.NumVertices != g.NumVertices() || stats.NumEdges != g.NumEdges() {
				t.Fatalf("stats dims %d/%d, graph %d/%d", stats.NumVertices, stats.NumEdges, g.NumVertices(), g.NumEdges())
			}
			sg, err := OpenSegmentedOpts(path, SegmentedOptions{SegmentVertices: segVerts})
			if err != nil {
				t.Fatalf("n=%d seg=%d: OpenSegmented: %v", tc.n, segVerts, err)
			}
			if sg.NumVertices() != g.NumVertices() || sg.NumEdges() != g.NumEdges() {
				t.Fatalf("SegGraph dims %d/%d", sg.NumVertices(), sg.NumEdges())
			}
			for _, in := range []bool{false, true} {
				wantOff, wantAdj := collectTopology(t, g, in)
				gotOff, gotAdj := collectTopology(t, sg, in)
				if !reflect.DeepEqual(gotOff, wantOff) {
					t.Fatalf("n=%d seg=%d in=%v: offsets differ", tc.n, segVerts, in)
				}
				if !reflect.DeepEqual(gotAdj, wantAdj) {
					t.Fatalf("n=%d seg=%d in=%v: adjacency differs", tc.n, segVerts, in)
				}
			}
			if err := sg.Err(); err != nil {
				t.Fatalf("latched error after clean read: %v", err)
			}
			sg.Close()
		}
	}
}

// TestSegmentedPartitionIdentical pins the partition boundaries to the
// in-RAM partitioner's: the emulated-parallel interleaved access stream
// depends on them, so they must be representation-independent.
func TestSegmentedPartitionIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 300, 2000)
	path := filepath.Join(t.TempDir(), "g.segcsr")
	if _, err := WriteSegmented(g, path, SegmentedOptions{SegmentVertices: 17}); err != nil {
		t.Fatal(err)
	}
	sg, err := OpenSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	for _, in := range []bool{false, true} {
		for _, p := range []int{1, 2, 3, 7, 16, 300, 1000} {
			want := g.PartitionEdgeBalanced(in, p)
			got := sg.PartitionEdgeBalanced(in, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("in=%v p=%d: partitions differ: %v vs %v", in, p, got, want)
			}
		}
	}
	if err := sg.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSegmentedQuarantines: a corrupt segmented graph is quarantined
// on open exactly like a corrupt store artifact, and the error is typed.
func TestOpenSegmentedQuarantines(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randGraph(rng, 50, 200)
	path := filepath.Join(t.TempDir(), "g.segcsr")
	if _, err := WriteSegmented(g, path, SegmentedOptions{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF // inside the header table
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSegmentedOpts(path, SegmentedOptions{})
	var ie *store.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("open corrupt = %v, want *store.IntegrityError", err)
	}
	if ie.Quarantined != path+store.CorruptSuffix {
		t.Fatalf("Quarantined = %q, want %q", ie.Quarantined, path+store.CorruptSuffix)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still present: %v", err)
	}
	if _, err := os.Stat(path + store.CorruptSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestSegmentedEmptyGraph pins the zero-value graph through the full
// write/open/stream cycle.
func TestSegmentedEmptyGraph(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.segcsr")
	if _, err := WriteSegmented(&Graph{}, path, SegmentedOptions{}); err != nil {
		t.Fatal(err)
	}
	sg, err := OpenSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	if sg.NumVertices() != 0 || sg.NumEdges() != 0 {
		t.Fatalf("dims %d/%d", sg.NumVertices(), sg.NumEdges())
	}
	if _, _, _, ok := sg.Rows(false, 0, 0).Next(); ok {
		t.Fatal("empty graph yielded a span")
	}
	if got := sg.PartitionEdgeBalanced(false, 4); len(got) != 0 {
		t.Fatalf("partitions of empty graph: %v", got)
	}
}
