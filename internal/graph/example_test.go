package graph_test

import (
	"fmt"

	"graphlocality/internal/graph"
)

func ExampleFromEdges() {
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	fmt.Println(g)
	fmt.Println("out(0):", g.OutNeighbors(0))
	fmt.Println("in(3): ", g.InNeighbors(3))
	// Output:
	// Graph{|V|=4, |E|=4, avgdeg=1.00}
	// out(0): [1 2]
	// in(3):  [1 2]
}

func ExampleGraph_Relabel() {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	// Reverse the vertex order: old 0 becomes new 2, etc.
	perm := graph.Permutation{2, 1, 0}
	h := g.Relabel(perm)
	fmt.Println(h.HasEdge(2, 1), h.HasEdge(1, 0))
	// Output: true true
}

func ExampleGraph_ConnectedComponents() {
	g := graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 3, Dst: 4}})
	_, k := g.ConnectedComponents()
	fmt.Println("components:", k)
	// Output: components: 3
}

func ExamplePermutation_Inverse() {
	p := graph.Permutation{2, 0, 1}
	fmt.Println(p.Inverse())
	// Output: [1 2 0]
}
