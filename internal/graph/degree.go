package graph

import "sort"

// OutDegrees returns a freshly allocated slice of all out-degrees.
func (g *Graph) OutDegrees() []uint32 {
	d := make([]uint32, g.n)
	for v := uint32(0); v < g.n; v++ {
		d[v] = g.OutDegree(v)
	}
	return d
}

// InDegrees returns a freshly allocated slice of all in-degrees.
func (g *Graph) InDegrees() []uint32 {
	d := make([]uint32, g.n)
	for v := uint32(0); v < g.n; v++ {
		d[v] = g.InDegree(v)
	}
	return d
}

// TotalDegrees returns out-degree + in-degree per vertex.
func (g *Graph) TotalDegrees() []uint32 {
	d := make([]uint32, g.n)
	for v := uint32(0); v < g.n; v++ {
		d[v] = g.OutDegree(v) + g.InDegree(v)
	}
	return d
}

// DegreeHistogram returns a map degree→count over the supplied degree
// slice. It is used for the paper's Figure 2 (degree distribution of the
// GCC across SlashBurn iterations).
func DegreeHistogram(degrees []uint32) map[uint32]uint64 {
	h := make(map[uint32]uint64)
	for _, d := range degrees {
		h[d]++
	}
	return h
}

// VerticesByDegreeDesc returns vertex IDs sorted by the given degree slice,
// descending; ties broken by ascending vertex ID for determinism.
func VerticesByDegreeDesc(degrees []uint32) []uint32 {
	order := make([]uint32, len(degrees))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if degrees[a] != degrees[b] {
			return degrees[a] > degrees[b]
		}
		return a < b
	})
	return order
}

// VerticesByDegreeAsc returns vertex IDs sorted by degree ascending; ties
// broken by ascending vertex ID.
func VerticesByDegreeAsc(degrees []uint32) []uint32 {
	order := make([]uint32, len(degrees))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if degrees[a] != degrees[b] {
			return degrees[a] < degrees[b]
		}
		return a < b
	})
	return order
}

// CountInHubs returns the number of vertices with in-degree > √|V|.
func (g *Graph) CountInHubs() uint32 {
	t := g.HubThreshold()
	var c uint32
	for v := uint32(0); v < g.n; v++ {
		if float64(g.InDegree(v)) > t {
			c++
		}
	}
	return c
}

// CountOutHubs returns the number of vertices with out-degree > √|V|.
func (g *Graph) CountOutHubs() uint32 {
	t := g.HubThreshold()
	var c uint32
	for v := uint32(0); v < g.n; v++ {
		if float64(g.OutDegree(v)) > t {
			c++
		}
	}
	return c
}
