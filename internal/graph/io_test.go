package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// validBinary serializes the diamond graph for the corruption tests to
// mutate. Layout: "GLCG", version u64, |V| u64, |E| u64, offsets
// (|V|+1)×u64, adjacency |E|×u32, little-endian.
func validBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := diamond().WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

const (
	hdrVersionOff  = 4
	hdrVerticesOff = 4 + 8
	hdrEdgesOff    = 4 + 16
	offsetsOff     = 4 + 24
)

func putU64(b []byte, off int, x uint64) {
	binary.LittleEndian.PutUint64(b[off:], x)
}

func TestReadBinaryRoundTrip(t *testing.T) {
	g, err := ReadBinary(bytes.NewReader(validBinary(t)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := diamond()
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("round trip changed shape: got |V|=%d |E|=%d, want |V|=%d |E|=%d",
			g.NumVertices(), g.NumEdges(), want.NumVertices(), want.NumEdges())
	}
}

// TestReadBinaryCorrupt mutates a valid file one field at a time and checks
// each mutation is rejected with a descriptive error (never a panic or an
// accepted bogus graph).
func TestReadBinaryCorrupt(t *testing.T) {
	base := validBinary(t)
	nVerts := binary.LittleEndian.Uint64(base[hdrVerticesOff:])
	nEdges := binary.LittleEndian.Uint64(base[hdrEdgesOff:])
	adjOff := offsetsOff + int(nVerts+1)*8

	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
	}{
		{"empty", func(b []byte) []byte { return nil }, "magic"},
		{"truncated magic", func(b []byte) []byte { return b[:2] }, "magic"},
		{"bad magic", func(b []byte) []byte { copy(b, "NOPE"); return b }, "bad magic"},
		{"truncated header", func(b []byte) []byte { return b[:hdrEdgesOff] }, "header"},
		{"bad version", func(b []byte) []byte { putU64(b, hdrVersionOff, 99); return b }, "unsupported version"},
		{"absurd vertex count", func(b []byte) []byte {
			putU64(b, hdrVerticesOff, MaxBinaryVertices+1)
			return b
		}, "over the loader limit"},
		{"absurd edge count", func(b []byte) []byte {
			putU64(b, hdrEdgesOff, MaxBinaryEdges+1)
			return b
		}, "over the loader limit"},
		{"vertex count beyond file", func(b []byte) []byte {
			putU64(b, hdrVerticesOff, 1<<20)
			return b
		}, "reading offsets"},
		{"edge count beyond file", func(b []byte) []byte {
			putU64(b, hdrEdgesOff, nEdges+1000)
			return b
		}, "tail offset"},
		{"truncated offsets", func(b []byte) []byte { return b[:offsetsOff+4] }, "reading offsets"},
		{"non-monotone offsets", func(b []byte) []byte {
			putU64(b, offsetsOff+8, nEdges) // off[1] jumps high...
			putU64(b, offsetsOff+16, 0)     // ...then off[2] drops back
			return b
		}, "not monotone"},
		{"offset exceeds edge count", func(b []byte) []byte {
			putU64(b, offsetsOff+8, nEdges+5)
			return b
		}, "exceeds edge count"},
		{"tail offset mismatch", func(b []byte) []byte {
			// Shrink every offset to 0 so off[n] != m while staying monotone.
			for v := uint64(0); v <= nVerts; v++ {
				putU64(b, offsetsOff+int(v)*8, 0)
			}
			return b
		}, "tail offset"},
		{"truncated edges", func(b []byte) []byte { return b[:adjOff+2] }, "reading edges"},
		{"adjacency out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[adjOff:], uint32(nVerts))
			return b
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), base...))
			g, err := ReadBinary(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("corrupt file accepted: %v", g)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadBinaryChecksum: damage that passes every structural check must
// still be rejected by the trailing CRC32C — here the last adjacency
// entry is swapped for another in-range vertex ID.
func TestReadBinaryChecksum(t *testing.T) {
	b := validBinary(t)
	adjOff := offsetsOff + int(binary.LittleEndian.Uint64(b[hdrVerticesOff:])+1)*8
	lastAdj := len(b) - 8 // final u32 adjacency entry + trailing crc u32
	if lastAdj < adjOff {
		t.Fatal("test graph has no edges")
	}
	old := binary.LittleEndian.Uint32(b[lastAdj:])
	binary.LittleEndian.PutUint32(b[lastAdj:], (old+1)%uint32(binary.LittleEndian.Uint64(b[hdrVerticesOff:])))
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("structurally-valid corruption not caught by checksum: %v", err)
	}
	// A truncated checksum is also rejected.
	b2 := validBinary(t)
	if _, err := ReadBinary(bytes.NewReader(b2[:len(b2)-2])); err == nil {
		t.Error("truncated checksum accepted")
	}
	// Trailing garbage after the checksum is rejected.
	b3 := append(validBinary(t), 0xFF)
	if _, err := ReadBinary(bytes.NewReader(b3)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing garbage accepted: %v", err)
	}
}

// TestReadBinaryLegacyV1 keeps pre-checksum files loadable: the same
// stream minus the trailing CRC, with the version field set to 1.
func TestReadBinaryLegacyV1(t *testing.T) {
	b := validBinary(t)
	v1 := b[:len(b)-4] // drop the trailing checksum
	putU64(v1, hdrVersionOff, 1)
	g, err := ReadBinary(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	want := diamond()
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("legacy load changed shape: |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

// TestReadBinaryHugeHeaderNoAllocation checks a header claiming a huge (but
// under-limit) graph fails fast at EOF instead of allocating the claimed
// size up front.
func TestReadBinaryHugeHeaderNoAllocation(t *testing.T) {
	b := validBinary(t)[:offsetsOff]
	putU64(b, hdrVerticesOff, MaxBinaryVertices)
	putU64(b, hdrEdgesOff, MaxBinaryEdges)
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated huge-header file accepted")
	}
}

func TestReadBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := FromEdges(0, nil).WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("want empty graph, got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}
