package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that any graph
// it accepts is internally consistent and round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 3 4\n0 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		// Vertex counts may shrink (max-ID based) only if the original
		// had a dangling max ID; edges must survive exactly.
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed |E|: %d vs %d", h.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzReadBinary checks the binary loader never panics on corrupt input.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = diamond().WriteBinary(&buf)
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("GLCG"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Corrupt variants of a valid file: truncations at every structural
	// boundary, a header claiming far more data than follows, and flipped
	// bytes inside the offset array.
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:4+24])
	f.Add(valid[:4+8])
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[12:], 1<<40) // |V|
	f.Add(huge)
	hugeE := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeE[20:], 1<<40) // |E|
	f.Add(hugeE)
	flipped := append([]byte(nil), valid...)
	if len(flipped) > 40 {
		flipped[36] ^= 0xff // inside the offsets
	}
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
