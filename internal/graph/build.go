package graph

import (
	"fmt"
	"sort"
)

// FromEdges builds a Graph with n vertices from a directed edge list.
// Duplicate edges are kept (the CSR/CSC arrays simply contain them twice);
// use FromEdgesDedup to drop duplicates. Edges referencing vertices >= n
// cause a panic — the caller owns ID assignment.
//
// Construction is two counting sorts (one per direction), O(|V|+|E|) time.
func FromEdges(n uint32, edges []Edge) *Graph {
	g := &Graph{n: n}
	g.outOff, g.outAdj = bucketize(n, edges, func(e Edge) (uint32, uint32) { return e.Src, e.Dst })
	g.inOff, g.inAdj = bucketize(n, edges, func(e Edge) (uint32, uint32) { return e.Dst, e.Src })
	return g
}

// FromEdgesDedup builds a Graph with n vertices, removing duplicate edges
// (parallel edges collapse to one).
func FromEdgesDedup(n uint32, edges []Edge) *Graph {
	g := FromEdges(n, edges)
	return g.dedup()
}

// bucketize performs a counting sort of edges keyed by key(e) and returns
// offsets plus the adjacent value() entries, each bucket sorted ascending.
func bucketize(n uint32, edges []Edge, key func(Edge) (uint32, uint32)) ([]uint64, []uint32) {
	off := make([]uint64, n+1)
	for _, e := range edges {
		k, v := key(e)
		if k >= n || v >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n))
		}
		off[k+1]++
	}
	for i := uint32(0); i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]uint32, len(edges))
	cur := make([]uint64, n)
	copy(cur, off[:n])
	for _, e := range edges {
		k, v := key(e)
		adj[cur[k]] = v
		cur[k]++
	}
	// Sort each bucket ascending.
	for v := uint32(0); v < n; v++ {
		b := adj[off[v]:off[v+1]]
		if len(b) > 1 {
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		}
	}
	return off, adj
}

// dedup removes duplicate entries from every adjacency list of both the CSR
// and CSC representations, returning a new Graph.
func (g *Graph) dedup() *Graph {
	outOff, outAdj := dedupAdj(g.n, g.outOff, g.outAdj)
	inOff, inAdj := dedupAdj(g.n, g.inOff, g.inAdj)
	return &Graph{n: g.n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
}

func dedupAdj(n uint32, off []uint64, adj []uint32) ([]uint64, []uint32) {
	nOff := make([]uint64, n+1)
	nAdj := make([]uint32, 0, len(adj))
	for v := uint32(0); v < n; v++ {
		b := adj[off[v]:off[v+1]]
		for i, u := range b {
			if i == 0 || b[i-1] != u {
				nAdj = append(nAdj, u)
			}
		}
		nOff[v+1] = uint64(len(nAdj))
	}
	return nOff, nAdj
}

// FromCSR builds a Graph directly from CSR arrays. The adjacency within each
// vertex's bucket is sorted by the constructor; the CSC side is derived.
// offsets must have n+1 entries with offsets[n] == len(adj).
func FromCSR(n uint32, offsets []uint64, adj []uint32) (*Graph, error) {
	if len(offsets) != int(n)+1 {
		return nil, fmt.Errorf("graph: FromCSR: offsets length %d != n+1 (%d)", len(offsets), n+1)
	}
	if offsets[n] != uint64(len(adj)) {
		return nil, fmt.Errorf("graph: FromCSR: tail offset %d != |adj| %d", offsets[n], len(adj))
	}
	for v := uint32(0); v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: FromCSR: offsets not monotone at %d", v)
		}
	}
	edges := make([]Edge, 0, len(adj))
	for v := uint32(0); v < n; v++ {
		for _, u := range adj[offsets[v]:offsets[v+1]] {
			if u >= n {
				return nil, fmt.Errorf("graph: FromCSR: neighbour %d of %d out of range", u, v)
			}
			edges = append(edges, Edge{v, u})
		}
	}
	return FromEdges(n, edges), nil
}

// RemoveZeroDegree drops vertices with in-degree and out-degree both zero,
// renumbering the remaining vertices contiguously while preserving their
// relative order (the paper removes zero-degree vertices from all datasets,
// §III-A). It returns the compacted graph and a mapping old→new where
// removed vertices map to NoVertex.
func (g *Graph) RemoveZeroDegree() (*Graph, []uint32) {
	mapping := make([]uint32, g.n)
	var next uint32
	for v := uint32(0); v < g.n; v++ {
		if g.OutDegree(v) == 0 && g.InDegree(v) == 0 {
			mapping[v] = NoVertex
			continue
		}
		mapping[v] = next
		next++
	}
	if next == g.n {
		return g, mapping // nothing removed
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		if mapping[v] == NoVertex {
			continue
		}
		for _, u := range g.OutNeighbors(v) {
			edges = append(edges, Edge{mapping[v], mapping[u]})
		}
	}
	return FromEdges(next, edges), mapping
}

// NoVertex is a sentinel vertex ID meaning "no vertex" / removed.
const NoVertex = ^uint32(0)
