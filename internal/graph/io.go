package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// File formats:
//
//   - Text: one "src dst" pair per line, '#'-prefixed comment lines skipped.
//     The vertex count is max ID + 1 unless given explicitly.
//   - Binary: magic "GLCG", version, |V|, |E|, CSR offsets, CSR edges and —
//     since version 2 — a trailing CRC32C over every preceding byte, so
//     bit rot or a torn tail in a saved graph is rejected instead of
//     silently reordering a different graph. Version-1 files (no
//     checksum) still load. CSC is rebuilt on load. Little-endian
//     throughout.

const (
	binaryMagic   = "GLCG"
	binaryVersion = 2
	// binaryVersionLegacy is the pre-checksum format, accepted on read.
	binaryVersionLegacy = 1
)

// graphCastagnoli is the CRC32C polynomial, matching the framing used by
// internal/store artifacts and trace files.
var graphCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Limits a binary header may claim before the loader rejects it outright.
// Both sit far above any graph this toolkit builds, but low enough that a
// corrupt or hostile header cannot drive the loader toward terabyte-scale
// allocations or multiplication overflow.
const (
	// MaxBinaryVertices bounds |V|; 2^28 vertices already mean 2 GiB of
	// offset data.
	MaxBinaryVertices = 1 << 28
	// MaxBinaryEdges bounds |E|; 2^32 edges already mean 16 GiB of
	// adjacency data.
	MaxBinaryEdges = 1 << 32
)

// WriteBinary serializes the graph's CSR form to w, ending with a CRC32C
// over every preceding byte.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	crc := crc32.New(graphCastagnoli)
	hw := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(hw, binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{binaryVersion, uint64(g.n), g.NumEdges()}
	for _, x := range hdr {
		if err := binary.Write(hw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(hw, binary.LittleEndian, g.outOff); err != nil {
		return err
	}
	if err := binary.Write(hw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// crcTapReader accumulates a CRC over exactly the bytes the consumer
// reads, so the trailing checksum compares against the consumed stream.
type crcTapReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *crcTapReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

// ReadBinary deserializes a graph written by WriteBinary. The loader is
// hardened against corrupt or hostile input: it validates the magic and
// version, caps the claimed |V| and |E| (MaxBinaryVertices,
// MaxBinaryEdges), checks offset monotonicity and the outOff[n] == |E|
// invariant as offsets stream in, and bounds-checks every adjacency ID, so
// a damaged file yields a descriptive error rather than a huge allocation
// or a panic later on.
func ReadBinary(r io.Reader) (*Graph, error) {
	// Everything up to the trailing checksum is consumed through the CRC
	// tap; for legacy version-1 files the accumulated hash is simply
	// ignored.
	br := bufio.NewReader(r)
	hr := &crcTapReader{r: br, h: crc32.New(graphCastagnoli)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(hr, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (want %q)", magic, binaryMagic)
	}
	var version, n, m uint64
	for _, p := range []*uint64{&version, &n, &m} {
		if err := binary.Read(hr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if version != binaryVersion && version != binaryVersionLegacy {
		return nil, fmt.Errorf("graph: unsupported version %d (want %d)", version, uint64(binaryVersion))
	}
	if n > MaxBinaryVertices {
		return nil, fmt.Errorf("graph: header claims %d vertices, over the loader limit %d", n, uint64(MaxBinaryVertices))
	}
	if m > MaxBinaryEdges {
		return nil, fmt.Errorf("graph: header claims %d edges, over the loader limit %d", m, uint64(MaxBinaryEdges))
	}
	// Read in bounded chunks so a corrupt header cannot demand a huge
	// allocation before EOF is detected, validating as data streams in.
	const chunk = 1 << 16
	off := make([]uint64, 0, min64(n+1, chunk))
	var prev uint64
	for read := uint64(0); read < n+1; {
		c := min64(n+1-read, chunk)
		buf := make([]uint64, c)
		if err := binary.Read(hr, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offsets (%d of %d): %w", read, n+1, err)
		}
		for i, x := range buf {
			if x < prev {
				return nil, fmt.Errorf("graph: offsets not monotone at vertex %d (%d after %d)", read+uint64(i), x, prev)
			}
			if x > m {
				return nil, fmt.Errorf("graph: offset %d of vertex %d exceeds edge count %d", x, read+uint64(i), m)
			}
			prev = x
		}
		off = append(off, buf...)
		read += c
	}
	if off[n] != m {
		return nil, fmt.Errorf("graph: tail offset %d != header edge count %d", off[n], m)
	}
	adj := make([]uint32, 0, min64(m, chunk))
	for read := uint64(0); read < m; {
		c := min64(m-read, chunk)
		buf := make([]uint32, c)
		if err := binary.Read(hr, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading edges (%d of %d): %w", read, m, err)
		}
		for i, u := range buf {
			if uint64(u) >= n {
				return nil, fmt.Errorf("graph: adjacency entry %d (value %d) out of range for %d vertices", read+uint64(i), u, n)
			}
		}
		adj = append(adj, buf...)
		read += c
	}
	if version >= binaryVersion {
		want := hr.h.Sum32()
		var got uint32
		if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
			return nil, fmt.Errorf("graph: reading trailing checksum: %w", err)
		}
		if got != want {
			return nil, fmt.Errorf("graph: checksum mismatch (file %08x, computed %08x)", got, want)
		}
		if x, err := br.Read(make([]byte, 1)); x != 0 || err != io.EOF {
			return nil, fmt.Errorf("graph: trailing bytes after checksum")
		}
	}
	return FromCSR(uint32(n), off, adj)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteEdgeList writes the graph as a text edge list ("src dst" per line).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphlocality edge list |V|=%d |E|=%d\n", g.n, g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		for _, u := range g.OutNeighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MaxEdgeListVertices bounds the vertex count ReadEdgeList accepts
// (max ID + 1). The text format is meant for datasets that are edited and
// inspected by hand; a stray huge ID must not translate into a huge
// allocation. Larger graphs should use the binary format or FromEdges.
const MaxEdgeListVertices = 1 << 24

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%' are
// comments; fields may be separated by any whitespace. The vertex count is
// max ID + 1 and must not exceed MaxEdgeListVertices.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID uint32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", line, err)
		}
		if m := max64(src, dst); m >= MaxEdgeListVertices {
			return nil, fmt.Errorf("graph: line %d: vertex ID %d exceeds the text-format limit %d",
				line, m, MaxEdgeListVertices-1)
		}
		e := Edge{uint32(src), uint32(dst)}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return FromEdges(0, nil), nil
	}
	return FromEdges(maxID+1, edges), nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
