package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// File formats:
//
//   - Text: one "src dst" pair per line, '#'-prefixed comment lines skipped.
//     The vertex count is max ID + 1 unless given explicitly.
//   - Binary: magic "GLCG", version, |V|, |E|, CSR offsets, CSR edges.
//     CSC is rebuilt on load. Little-endian throughout.

const (
	binaryMagic   = "GLCG"
	binaryVersion = 1
)

// WriteBinary serializes the graph's CSR form to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{binaryVersion, uint64(g.n), g.NumEdges()}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outOff); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, n, m uint64
	for _, p := range []*uint64{&version, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if n >= uint64(NoVertex) {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}
	// Read in bounded chunks so a corrupt header cannot demand a huge
	// allocation before EOF is detected.
	const chunk = 1 << 16
	off := make([]uint64, 0, min64(n+1, chunk))
	for read := uint64(0); read < n+1; {
		c := min64(n+1-read, chunk)
		buf := make([]uint64, c)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		off = append(off, buf...)
		read += c
	}
	adj := make([]uint32, 0, min64(m, chunk))
	for read := uint64(0); read < m; {
		c := min64(m-read, chunk)
		buf := make([]uint32, c)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading edges: %w", err)
		}
		adj = append(adj, buf...)
		read += c
	}
	return FromCSR(uint32(n), off, adj)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteEdgeList writes the graph as a text edge list ("src dst" per line).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphlocality edge list |V|=%d |E|=%d\n", g.n, g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		for _, u := range g.OutNeighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MaxEdgeListVertices bounds the vertex count ReadEdgeList accepts
// (max ID + 1). The text format is meant for datasets that are edited and
// inspected by hand; a stray huge ID must not translate into a huge
// allocation. Larger graphs should use the binary format or FromEdges.
const MaxEdgeListVertices = 1 << 24

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%' are
// comments; fields may be separated by any whitespace. The vertex count is
// max ID + 1 and must not exceed MaxEdgeListVertices.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID uint32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", line, err)
		}
		if m := max64(src, dst); m >= MaxEdgeListVertices {
			return nil, fmt.Errorf("graph: line %d: vertex ID %d exceeds the text-format limit %d",
				line, m, MaxEdgeListVertices-1)
		}
		e := Edge{uint32(src), uint32(dst)}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return FromEdges(0, nil), nil
	}
	return FromEdges(maxID+1, edges), nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
