package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityPermutation(t *testing.T) {
	p := Identity(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := diamond()
	h := g.Relabel(Identity(4))
	if !g.Equal(h) {
		t.Error("identity relabel changed the graph")
	}
}

func TestPermutationValidate(t *testing.T) {
	if err := Permutation([]uint32{0, 1, 2}).Validate(); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := Permutation([]uint32{0, 0, 2}).Validate(); err == nil {
		t.Error("duplicate new ID accepted")
	}
	if err := Permutation([]uint32{0, 5, 2}).Validate(); err == nil {
		t.Error("out-of-range new ID accepted")
	}
}

func TestPermutationInverse(t *testing.T) {
	p := Permutation([]uint32{2, 0, 3, 1})
	inv := p.Inverse()
	for old, nw := range p {
		if inv[nw] != uint32(old) {
			t.Fatalf("inverse broken at %d", old)
		}
	}
	// p ∘ p⁻¹ = identity.
	id := p.Compose(inv)
	for i, v := range id {
		if v != uint32(i) {
			t.Fatalf("compose with inverse not identity at %d", i)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := diamond()
	p := Permutation([]uint32{3, 2, 1, 0}) // reverse order
	h := g.Relabel(p)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed |E|: %d vs %d", h.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(p[e.Src], p[e.Dst]) {
			t.Errorf("edge (%d,%d) lost after relabel", e.Src, e.Dst)
		}
	}
	// Degrees transport along the permutation.
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.OutDegree(v) != h.OutDegree(p[v]) || g.InDegree(v) != h.InDegree(p[v]) {
			t.Errorf("degree of %d not preserved under relabel", v)
		}
	}
}

func TestRelabelPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Relabel with short permutation did not panic")
		}
	}()
	diamond().Relabel(Permutation([]uint32{0, 1}))
}

// randomPermutation builds a uniformly random permutation of n elements.
func randomPermutation(rng *rand.Rand, n uint32) Permutation {
	p := Identity(n)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// randomGraph builds a random graph with n vertices and m edges.
func randomGraph(rng *rand.Rand, n uint32, m int) *Graph {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n)))}
	}
	return FromEdges(n, edges)
}

// Property: relabeling by a random permutation is an isomorphism — edge
// count, degree multiset, and validation all hold; relabeling by the
// inverse recovers the original graph.
func TestRelabelRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(60) + 2)
		g := randomGraph(rng, n, rng.Intn(300))
		p := randomPermutation(rng, n)
		h := g.Relabel(p)
		if h.Validate() != nil || h.NumEdges() != g.NumEdges() {
			return false
		}
		back := h.Relabel(p.Inverse())
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Inverse is an involution and Compose respects associativity
// with identity.
func TestPermutationAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(100) + 1)
		p := randomPermutation(rng, n)
		q := randomPermutation(rng, n)
		if p.Validate() != nil {
			return false
		}
		if pp := p.Inverse().Inverse(); !equalPerm(pp, p) {
			return false
		}
		// (p ∘ q)⁻¹ == q⁻¹ ∘ p⁻¹
		lhs := p.Compose(q).Inverse()
		rhs := q.Inverse().Compose(p.Inverse())
		return equalPerm(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func equalPerm(a, b Permutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComposePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with mismatched lengths did not panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}
