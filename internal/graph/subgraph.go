package graph

// InducedSubgraph returns the subgraph induced by the vertices where
// keep[v] is true, with vertices renumbered contiguously in ascending
// original-ID order, plus the mapping old→new (removed vertices map to
// NoVertex). Edges survive iff both endpoints are kept.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []uint32) {
	if len(keep) != int(g.n) {
		panic("graph: InducedSubgraph keep mask length mismatch")
	}
	mapping := make([]uint32, g.n)
	var next uint32
	for v := uint32(0); v < g.n; v++ {
		if keep[v] {
			mapping[v] = next
			next++
		} else {
			mapping[v] = NoVertex
		}
	}
	edges := make([]Edge, 0)
	for v := uint32(0); v < g.n; v++ {
		if !keep[v] {
			continue
		}
		for _, u := range g.OutNeighbors(v) {
			if keep[u] {
				edges = append(edges, Edge{mapping[v], mapping[u]})
			}
		}
	}
	return FromEdges(next, edges), mapping
}
