package graph

import "fmt"

// Subgraph is a read-only vertex view over a parent graph: the subgraph
// induced by one block of a membership partition, exposed through local
// vertex IDs [0, N) with O(1) local↔global translation. The view itself
// copies no edges — internal degrees and edge iteration are computed by
// scanning the parent's adjacency and filtering on membership — so
// classifying a community's structure costs one adjacency sweep and zero
// allocation of edge storage. Materialize builds the induced *Graph (with
// its own CSR/CSC arrays) only when a caller actually needs one, e.g. to
// run a reordering algorithm over the community.
//
// Views produced by PartitionByMembership share the partition's
// global→local array (each vertex belongs to exactly one block, so one
// array serves every view). A Subgraph is safe for concurrent readers.
type Subgraph struct {
	parent *Graph
	id     uint32   // this block's community label
	verts  []uint32 // local -> global, ascending global order
	// Shared across the partition: member[g] is the local ID of g within
	// its own block; membership[g] names that block. A global vertex u is
	// inside THIS view iff membership[u] == id.
	local      []uint32
	membership []uint32
}

// PartitionByMembership splits g into count vertex views, one per
// membership label: membership[v] ∈ [0, count) assigns every vertex to
// exactly one block. Within a block, local IDs follow ascending global ID
// order. The views share one global→local array, so building the whole
// partition is O(|V|) regardless of block count.
func (g *Graph) PartitionByMembership(membership []uint32, count int) []*Subgraph {
	if len(membership) != int(g.n) {
		panic(fmt.Sprintf("graph: PartitionByMembership membership length %d != |V| %d",
			len(membership), g.n))
	}
	sizes := make([]uint32, count)
	for v, c := range membership {
		if int(c) >= count {
			panic(fmt.Sprintf("graph: PartitionByMembership label %d of vertex %d out of range [0,%d)",
				c, v, count))
		}
		sizes[c]++
	}
	local := make([]uint32, g.n)
	blocks := make([][]uint32, count)
	for c, sz := range sizes {
		blocks[c] = make([]uint32, 0, sz)
	}
	for v := uint32(0); v < g.n; v++ {
		c := membership[v]
		local[v] = uint32(len(blocks[c]))
		blocks[c] = append(blocks[c], v)
	}
	views := make([]*Subgraph, count)
	for c := range views {
		views[c] = &Subgraph{
			parent: g, id: uint32(c), verts: blocks[c],
			local: local, membership: membership,
		}
	}
	return views
}

// NumVertices returns the view's vertex count.
func (s *Subgraph) NumVertices() uint32 { return uint32(len(s.verts)) }

// Parent returns the graph the view is defined over.
func (s *Subgraph) Parent() *Graph { return s.parent }

// Global translates a local vertex ID to the parent's ID space.
func (s *Subgraph) Global(l uint32) uint32 { return s.verts[l] }

// Globals returns the member vertices in ascending global-ID order (local
// ID i maps to Globals()[i]). The slice aliases internal storage and must
// not be modified.
func (s *Subgraph) Globals() []uint32 { return s.verts }

// Local translates a parent vertex ID to the view's local ID space. It
// returns NoVertex for vertices outside the view.
func (s *Subgraph) Local(g uint32) uint32 {
	if s.membership[g] != s.id {
		return NoVertex
	}
	return s.local[g]
}

// Contains reports whether parent vertex g is a member of the view.
func (s *Subgraph) Contains(g uint32) bool { return s.membership[g] == s.id }

// OutDegree returns the number of v's out-edges whose destination is also
// inside the view (v is a local ID). O(deg) in the parent degree.
func (s *Subgraph) OutDegree(v uint32) uint32 {
	var d uint32
	for _, u := range s.parent.OutNeighbors(s.verts[v]) {
		if s.membership[u] == s.id {
			d++
		}
	}
	return d
}

// InternalDegrees returns, per local vertex, the total internal degree
// (internal out-degree + internal in-degree) — the degree sequence of the
// induced subgraph's symmetrized view, which is what the structure
// classifier bins. One fresh slice, no edge copies.
func (s *Subgraph) InternalDegrees() []uint32 {
	deg := make([]uint32, len(s.verts))
	for l, gv := range s.verts {
		for _, u := range s.parent.OutNeighbors(gv) {
			if s.membership[u] == s.id {
				deg[l]++
			}
		}
		for _, u := range s.parent.InNeighbors(gv) {
			if s.membership[u] == s.id {
				deg[l]++
			}
		}
	}
	return deg
}

// NumInternalEdges counts the directed edges with both endpoints inside
// the view.
func (s *Subgraph) NumInternalEdges() uint64 {
	var m uint64
	for _, gv := range s.verts {
		for _, u := range s.parent.OutNeighbors(gv) {
			if s.membership[u] == s.id {
				m++
			}
		}
	}
	return m
}

// EachInternalOut calls fn(src, dst) with local IDs for every directed
// edge internal to the view, in (src asc, dst asc) order.
func (s *Subgraph) EachInternalOut(fn func(src, dst uint32)) {
	for l, gv := range s.verts {
		for _, u := range s.parent.OutNeighbors(gv) {
			if s.membership[u] == s.id {
				fn(uint32(l), s.local[u])
			}
		}
	}
}

// Materialize builds the induced subgraph as a standalone *Graph in local
// ID space. Because local IDs follow ascending global order, a membership
// assigning every vertex to one block materializes to a graph Equal to
// the parent with identical IDs — the identity-embedding property the
// brew differential tests pin.
func (s *Subgraph) Materialize() *Graph {
	n := uint32(len(s.verts))
	// Direct CSR fill: count internal out-degrees, prefix-sum, fill.
	// Parent adjacency is sorted and local mapping is monotone within the
	// block, so each bucket comes out sorted without a per-bucket sort.
	off := make([]uint64, n+1)
	for l, gv := range s.verts {
		var d uint64
		for _, u := range s.parent.OutNeighbors(gv) {
			if s.membership[u] == s.id {
				d++
			}
		}
		off[l+1] = off[l] + d
	}
	adj := make([]uint32, off[n])
	var next uint64
	for _, gv := range s.verts {
		for _, u := range s.parent.OutNeighbors(gv) {
			if s.membership[u] == s.id {
				adj[next] = s.local[u]
				next++
			}
		}
	}
	g := &Graph{n: n, outOff: off, outAdj: adj}
	g.inOff, g.inAdj = transpose(n, off, adj)
	return g
}

// transpose derives CSC arrays from CSR arrays (buckets come out sorted
// because sources are visited in ascending order).
func transpose(n uint32, off []uint64, adj []uint32) ([]uint64, []uint32) {
	inOff := make([]uint64, n+1)
	for _, u := range adj {
		inOff[u+1]++
	}
	for v := uint32(0); v < n; v++ {
		inOff[v+1] += inOff[v]
	}
	inAdj := make([]uint32, len(adj))
	cur := make([]uint64, n)
	copy(cur, inOff[:n])
	for v := uint32(0); v < n; v++ {
		for _, u := range adj[off[v]:off[v+1]] {
			inAdj[cur[u]] = v
			cur[u]++
		}
	}
	return inOff, inAdj
}

// InducedSubgraph returns the subgraph induced by the vertices where
// keep[v] is true, with vertices renumbered contiguously in ascending
// original-ID order, plus the mapping old→new (removed vertices map to
// NoVertex). Edges survive iff both endpoints are kept.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []uint32) {
	if len(keep) != int(g.n) {
		panic("graph: InducedSubgraph keep mask length mismatch")
	}
	mapping := make([]uint32, g.n)
	var next uint32
	for v := uint32(0); v < g.n; v++ {
		if keep[v] {
			mapping[v] = next
			next++
		} else {
			mapping[v] = NoVertex
		}
	}
	edges := make([]Edge, 0)
	for v := uint32(0); v < g.n; v++ {
		if !keep[v] {
			continue
		}
		for _, u := range g.OutNeighbors(v) {
			if keep[u] {
				edges = append(edges, Edge{mapping[v], mapping[u]})
			}
		}
	}
	return FromEdges(next, edges), mapping
}
