package segcsr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"graphlocality/internal/obs"
	"graphlocality/internal/store"
	"graphlocality/internal/vfs"
)

// Options configures writing and opening segmented graphs.
type Options struct {
	// SegmentVertices is the number of consecutive vertices per segment
	// (0 = DefaultSegmentVertices). Write persists it in segmeta; Open
	// ignores it (the file knows its own geometry).
	SegmentVertices int
	// CacheBytes budgets the decoded-segment LRU cache in bytes
	// (0 = DefaultCacheBytes). Segments whose decoded size alone
	// exceeds the budget are served uncached, so resident bytes never
	// exceed the budget.
	CacheBytes int64
	// Obs receives the cache/read instrumentation (nil = none).
	Obs obs.Recorder
}

func (o Options) segVerts() uint32 {
	if o.SegmentVertices < 1 {
		return DefaultSegmentVertices
	}
	return uint32(o.SegmentVertices)
}

func (o Options) cacheBytes() int64 {
	if o.CacheBytes <= 0 {
		return DefaultCacheBytes
	}
	return o.CacheBytes
}

// WriteStats summarizes one written (or measured) segmented graph.
type WriteStats struct {
	NumVertices uint32
	NumEdges    uint64
	Segments    int
	// OutPayloadBytes / InPayloadBytes are the encoded segment payload
	// sizes per direction (excluding indexes and container framing).
	OutPayloadBytes uint64
	InPayloadBytes  uint64
	// IndexBytes covers both per-segment indexes.
	IndexBytes uint64
}

// BytesPerEdge is the compression metric the locality analysis reports
// per reordering: encoded CSR payload bytes per edge (the CSC direction
// mirrors it; one direction keeps the metric comparable to raw CSR's 4
// bytes/edge). Zero-edge graphs report 0.
func (s WriteStats) BytesPerEdge() float64 {
	if s.NumEdges == 0 {
		return 0
	}
	return float64(s.OutPayloadBytes) / float64(s.NumEdges)
}

// validateCSR checks the structural invariants Write depends on.
func validateCSR(name string, c CSR, n uint32, m uint64) error {
	if len(c.Off) != int(n)+1 {
		return fmt.Errorf("segcsr: %s offsets length %d, want %d", name, len(c.Off), n+1)
	}
	if c.Off[0] != 0 || c.Off[n] != m || uint64(len(c.Adj)) != m {
		return fmt.Errorf("segcsr: %s offsets ends [%d,%d], adjacency %d, want [0,%d]", name, c.Off[0], c.Off[n], len(c.Adj), m)
	}
	for v := uint32(0); v < n; v++ {
		if c.Off[v] > c.Off[v+1] {
			return fmt.Errorf("segcsr: %s offsets not monotone at %d", name, v)
		}
	}
	return nil
}

// Write encodes the graph given by its raw CSR (out) and CSC (in)
// arrays into a segmented container at path, through the crash-safe
// atomic write protocol on fsys (nil = the OS passthrough) — so a crash
// mid-write leaves the old file (or nothing), never a torn container,
// and the vfs fault seam covers every byte that goes to disk.
//
// Segments are encoded one at a time, so peak writer memory is the
// compressed output plus one segment's scratch — not a second copy of
// the graph.
func Write(fsys vfs.FS, path string, out, in CSR, opts Options) (WriteStats, error) {
	n := uint32(len(out.Off) - 1)
	if len(out.Off) == 0 {
		return WriteStats{}, fmt.Errorf("segcsr: empty offsets")
	}
	m := uint64(len(out.Adj))
	if err := validateCSR("out", out, n, m); err != nil {
		return WriteStats{}, err
	}
	if err := validateCSR("in", in, n, m); err != nil {
		return WriteStats{}, err
	}
	segVerts := opts.segVerts()
	nsegs := int((uint64(n) + uint64(segVerts) - 1) / uint64(segVerts))

	meta := make([]byte, metaBytes)
	binary.LittleEndian.PutUint32(meta[0:], FormatVersion)
	binary.LittleEndian.PutUint32(meta[4:], n)
	binary.LittleEndian.PutUint64(meta[8:], m)
	binary.LittleEndian.PutUint32(meta[16:], segVerts)
	binary.LittleEndian.PutUint32(meta[20:], uint32(nsegs))

	encodeDir := func(c CSR) (idx, data []byte) {
		idx = make([]byte, 0, nsegs*idxEntryBytes)
		var scratch []byte
		for s := 0; s < nsegs; s++ {
			lo := uint32(s) * segVerts
			hi := lo + segVerts
			if hi > n || hi < lo { // hi<lo: uint32 overflow on huge segVerts
				hi = n
			}
			scratch = appendSegment(scratch[:0], c, lo, hi)
			var e [idxEntryBytes]byte
			binary.LittleEndian.PutUint64(e[0:], c.Off[lo])
			binary.LittleEndian.PutUint64(e[8:], uint64(len(data)))
			binary.LittleEndian.PutUint32(e[16:], uint32(len(scratch)))
			binary.LittleEndian.PutUint32(e[20:], crc32.Checksum(scratch, castagnoli))
			idx = append(idx, e[:]...)
			data = append(data, scratch...)
		}
		return idx, data
	}
	outIdx, outData := encodeDir(out)
	inIdx, inData := encodeDir(in)

	sections := []store.Section{
		{Name: SectionMeta, Data: meta},
		{Name: SectionIdxOut, Data: outIdx},
		{Name: SectionIdxIn, Data: inIdx},
		{Name: SectionDataOut, Data: outData},
		{Name: SectionDataIn, Data: inData},
	}
	err := store.WriteFileAtomicFS(fsys, path, func(w io.Writer) error {
		return store.WriteContainer(w, sections)
	})
	if err != nil {
		return WriteStats{}, err
	}
	return WriteStats{
		NumVertices:     n,
		NumEdges:        m,
		Segments:        nsegs,
		OutPayloadBytes: uint64(len(outData)),
		InPayloadBytes:  uint64(len(inData)),
		IndexBytes:      uint64(len(outIdx) + len(inIdx)),
	}, nil
}

// Measure returns the stats Write would produce for the given CSR/CSC
// without touching disk — the cheap path for the bytes/edge metric.
func Measure(out, in CSR, opts Options) WriteStats {
	n := uint32(len(out.Off) - 1)
	segVerts := opts.segVerts()
	nsegs := 0
	if n > 0 {
		nsegs = int((uint64(n) + uint64(segVerts) - 1) / uint64(segVerts))
	}
	return WriteStats{
		NumVertices:     n,
		NumEdges:        uint64(len(out.Adj)),
		Segments:        nsegs,
		OutPayloadBytes: EncodedBytes(out),
		InPayloadBytes:  EncodedBytes(in),
		IndexBytes:      uint64(2 * nsegs * idxEntryBytes),
	}
}

// castagnoli mirrors the store's CRC32C table: per-segment checksums use
// the same polynomial as every other frame in the repo.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)
