package segcsr

import (
	"encoding/binary"
	"hash/crc32"
	"sync"

	"graphlocality/internal/store"
	"graphlocality/internal/vfs"
)

// idxEntry is one parsed per-segment index record.
type idxEntry struct {
	firstEdge  uint64 // absolute index of the segment's first edge
	payloadOff uint64 // offset within the direction's data section
	payloadLen uint32
	crc        uint32 // CRC32C of the payload bytes
	edges      uint64 // derived: edges in this segment
}

// File is an open segmented graph: verified metadata and indexes in
// memory, payload sections on disk behind ReadAt, decoded segments in a
// shared byte-budgeted LRU. Safe for concurrent readers; the first
// verification failure seen by any reader is latched and visible via
// Err.
type File struct {
	cf       *store.ContainerFile
	n        uint32
	m        uint64
	segVerts uint32
	idx      [2][]idxEntry // [0]=out, [1]=in
	data     [2]readerAt
	cache    *segCache

	mu       sync.Mutex
	firstErr error
}

type readerAt interface {
	ReadAt(p []byte, off int64) (int, error)
}

// Open opens a segmented graph on the real filesystem.
func Open(path string, opts Options) (*File, error) {
	return OpenFS(nil, path, opts)
}

// OpenFS opens and verifies the segmented graph at path through fsys
// (nil = the OS passthrough). The container table, segmeta and both
// segment indexes are fully verified here; segment payloads are only
// read — and CRC-verified — on demand. All verification failures are
// typed *store.IntegrityError.
func OpenFS(fsys vfs.FS, path string, opts Options) (*File, error) {
	cf, err := store.OpenContainerFS(fsys, path)
	if err != nil {
		return nil, err
	}
	f, err := newFile(cf, opts)
	if err != nil {
		cf.Close()
		if ie, ok := err.(*store.IntegrityError); ok && ie.Path == "" {
			ie.Path = path
		}
		return nil, err
	}
	return f, nil
}

func newFile(cf *store.ContainerFile, opts Options) (*File, error) {
	meta, err := cf.ReadSection(SectionMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != metaBytes {
		return nil, corruptf("segmeta is %d bytes, want %d", len(meta), metaBytes)
	}
	if v := binary.LittleEndian.Uint32(meta[0:]); v != FormatVersion {
		return nil, corruptf("unsupported format version %d (want %d)", v, FormatVersion)
	}
	f := &File{
		cf:       cf,
		n:        binary.LittleEndian.Uint32(meta[4:]),
		m:        binary.LittleEndian.Uint64(meta[8:]),
		segVerts: binary.LittleEndian.Uint32(meta[16:]),
	}
	nsegs := binary.LittleEndian.Uint32(meta[20:])
	if f.segVerts == 0 {
		return nil, corruptf("segmeta claims 0 vertices per segment")
	}
	wantSegs := (uint64(f.n) + uint64(f.segVerts) - 1) / uint64(f.segVerts)
	if uint64(nsegs) != wantSegs {
		return nil, corruptf("segmeta claims %d segments, geometry implies %d", nsegs, wantSegs)
	}
	for d, names := range [2][2]string{{SectionIdxOut, SectionDataOut}, {SectionIdxIn, SectionDataIn}} {
		raw, err := cf.ReadSection(names[0])
		if err != nil {
			return nil, err
		}
		dataSize, ok := cf.SectionSize(names[1])
		if !ok {
			return nil, corruptf("missing section %q", names[1])
		}
		idx, err := f.parseIndex(names[0], raw, int(nsegs), dataSize)
		if err != nil {
			return nil, err
		}
		sr, err := cf.SectionReader(names[1])
		if err != nil {
			return nil, err
		}
		f.idx[d] = idx
		f.data[d] = sr
	}
	f.cache = newSegCache(opts.cacheBytes(), opts.Obs)
	return f, nil
}

// parseIndex decodes and fully validates one direction's segment index:
// entry count, contiguous payload extents covering the data section
// exactly, monotone first-edge values ending at |E|, and a minimum
// payload size (1 byte per vertex degree + 1 byte per edge gap) that
// bounds decode allocations by real file bytes even under a hostile
// index.
func (f *File) parseIndex(name string, raw []byte, nsegs int, dataSize uint64) ([]idxEntry, error) {
	if len(raw) != nsegs*idxEntryBytes {
		return nil, corruptf("%s is %d bytes, want %d for %d segments", name, len(raw), nsegs*idxEntryBytes, nsegs)
	}
	idx := make([]idxEntry, nsegs)
	var off uint64
	for i := range idx {
		e := raw[i*idxEntryBytes:]
		idx[i].firstEdge = binary.LittleEndian.Uint64(e[0:])
		idx[i].payloadOff = binary.LittleEndian.Uint64(e[8:])
		idx[i].payloadLen = binary.LittleEndian.Uint32(e[16:])
		idx[i].crc = binary.LittleEndian.Uint32(e[20:])
		if idx[i].payloadOff != off {
			return nil, corruptf("%s segment %d: payload offset %d, want contiguous %d", name, i, idx[i].payloadOff, off)
		}
		off += uint64(idx[i].payloadLen)
		if idx[i].firstEdge > f.m {
			return nil, corruptf("%s segment %d: first edge %d past |E|=%d", name, i, idx[i].firstEdge, f.m)
		}
		if i == 0 && idx[i].firstEdge != 0 {
			return nil, corruptf("%s segment 0: first edge %d, want 0", name, idx[i].firstEdge)
		}
		if i > 0 {
			if idx[i].firstEdge < idx[i-1].firstEdge {
				return nil, corruptf("%s segment %d: first edge %d below predecessor's %d", name, i, idx[i].firstEdge, idx[i-1].firstEdge)
			}
			idx[i-1].edges = idx[i].firstEdge - idx[i-1].firstEdge
		}
	}
	if nsegs > 0 {
		idx[nsegs-1].edges = f.m - idx[nsegs-1].firstEdge
	}
	if off != dataSize {
		return nil, corruptf("%s extents cover %d bytes, data section has %d", name, off, dataSize)
	}
	for i := range idx {
		lo, hi := f.segRange(i)
		if minBytes := uint64(hi-lo) + idx[i].edges; uint64(idx[i].payloadLen) < minBytes {
			return nil, corruptf("%s segment %d: payload %d bytes cannot hold %d vertices and %d edges",
				name, i, idx[i].payloadLen, hi-lo, idx[i].edges)
		}
	}
	return idx, nil
}

// segRange returns the vertex range [lo, hi) segment seg covers.
func (f *File) segRange(seg int) (lo, hi uint32) {
	l := uint64(seg) * uint64(f.segVerts)
	h := l + uint64(f.segVerts)
	if h > uint64(f.n) {
		h = uint64(f.n)
	}
	return uint32(l), uint32(h)
}

// NumVertices returns |V|.
func (f *File) NumVertices() uint32 { return f.n }

// NumEdges returns |E| (per direction).
func (f *File) NumEdges() uint64 { return f.m }

// SegmentVertices returns the per-segment vertex count.
func (f *File) SegmentVertices() uint32 { return f.segVerts }

// Segments returns the number of segments per direction.
func (f *File) Segments() int { return len(f.idx[0]) }

// Path returns the path the graph was opened from.
func (f *File) Path() string { return f.cf.Path() }

// CacheStats returns the decoded-segment cache's resident and peak
// byte counts and resident segment count.
func (f *File) CacheStats() (resident, peak int64, segments int) {
	return f.cache.stats()
}

func dirIdx(in bool) int {
	if in {
		return 1
	}
	return 0
}

// record latches the first verification failure seen by any reader.
func (f *File) record(err error) {
	f.mu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.mu.Unlock()
}

// Err returns the first verification failure any cursor or offset query
// on this file has hit (cursors end their streams early on corruption;
// this is where the cause surfaces), or nil.
func (f *File) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Segment returns the decoded segment seg of the given direction,
// serving from the cache when resident. The payload is CRC-verified
// against the index before decoding; decode re-checks every structural
// claim. Errors are typed *store.IntegrityError and latched on the File.
func (f *File) Segment(in bool, seg int) (*segment, error) {
	d := dirIdx(in)
	if seg < 0 || seg >= len(f.idx[d]) {
		return nil, corruptf("segment %d out of range (have %d)", seg, len(f.idx[d]))
	}
	k := segKey{in: in, seg: seg}
	if s := f.cache.get(k); s != nil {
		return s, nil
	}
	e := f.idx[d][seg]
	payload := make([]byte, e.payloadLen)
	if _, err := f.data[d].ReadAt(payload, int64(e.payloadOff)); err != nil {
		err = corruptf("segment %d: reading payload: %v", seg, err)
		f.record(err)
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != e.crc {
		err := corruptf("segment %d: payload checksum mismatch (index %08x, computed %08x)", seg, e.crc, got)
		f.record(err)
		return nil, err
	}
	lo, hi := f.segRange(seg)
	off, adj, err := decodeSegment(payload, lo, hi, f.n, e.firstEdge, e.edges)
	if err != nil {
		f.record(err)
		return nil, err
	}
	s := &segment{off: off, adj: adj}
	f.cache.put(k, s)
	return s, nil
}

// EdgeOffset returns the absolute edge offset of vertex v (v = |V|
// yields |E|), decoding v's segment on demand. On corruption it latches
// the error on the File and returns 0 — callers batching many queries
// check Err once at the end.
func (f *File) EdgeOffset(in bool, v uint32) uint64 {
	if v >= f.n {
		return f.m
	}
	seg := int(v / f.segVerts)
	s, err := f.Segment(in, seg)
	if err != nil {
		return 0
	}
	lo, _ := f.segRange(seg)
	return s.off[v-lo]
}

// Rows returns a cursor over the rows of vertices [lo, hi) in the given
// direction (in=false: CSR out-edges; in=true: CSC in-edges), decoding
// segments on demand. Spans never cross a segment, so each Next returns
// a zero-copy view into one decoded segment.
func (f *File) Rows(in bool, lo, hi uint32) *Cursor {
	if hi > f.n {
		hi = f.n
	}
	if lo > hi {
		lo = hi
	}
	return &Cursor{f: f, in: in, v: lo, hi: hi}
}

// Cursor streams contiguous row spans out of decoded segments. It
// satisfies graph.RowCursor's contract: off holds absolute offsets (len
// = span vertices + 1) and adj[0] sits at absolute edge index off[0].
// On corruption the stream ends early (Next returns false) and Err —
// and the File's Err — report the cause.
type Cursor struct {
	f   *File
	in  bool
	v   uint32
	hi  uint32
	err error
}

// Next returns the next span, or false at the end of the range or on a
// verification failure.
func (c *Cursor) Next() (base uint32, off []uint64, adj []uint32, ok bool) {
	if c.err != nil || c.v >= c.hi {
		return 0, nil, nil, false
	}
	seg := int(c.v / c.f.segVerts)
	s, err := c.f.Segment(c.in, seg)
	if err != nil {
		c.err = err
		return 0, nil, nil, false
	}
	segLo, segHi := c.f.segRange(seg)
	spanHi := segHi
	if spanHi > c.hi {
		spanHi = c.hi
	}
	base = c.v
	off = s.off[base-segLo : spanHi-segLo+1]
	first := s.off[0]
	adj = s.adj[off[0]-first : off[len(off)-1]-first]
	c.v = spanHi
	return base, off, adj, true
}

// Err returns the verification failure that ended the stream, or nil.
func (c *Cursor) Err() error { return c.err }

// Close releases the underlying container file. Decoded segments already
// handed out remain valid (they are plain slices).
func (f *File) Close() error { return f.cf.Close() }
