// Package segcsr implements the segmented, compressed CSR/CSC container
// format behind graph.SegGraph: the out-of-core representation that lets
// the simulators stream graphs larger than memory.
//
// The vertex set is cut into fixed-size segments of SegmentVertices
// consecutive vertices. Each segment's adjacency rows are delta-gap +
// varint encoded (per vertex: LEB128 degree, then the first neighbour as
// a zig-zag gap from the vertex ID and every later neighbour as an
// unsigned gap from its predecessor — the classic WebGraph-style scheme,
// and byte-identical to core.CompressedAdjacencyBytes' accounting for
// the gap part). Good reorderings put neighbours close together in ID
// space, so they shrink the gaps: compressed bytes/edge is itself a
// locality metric, reported per reordering by `experiment brew` and
// `localitylab compress`.
//
// On disk a segmented graph is one GLAS container (internal/store
// framing: header-CRC-guarded section table, per-section CRC32C) with
// five sections:
//
//	segmeta      fixed 24-byte header: format version, |V|, |E|,
//	             segment vertices, segment count
//	segidx.out   per-segment index for the CSR direction: first edge
//	             index, payload offset, payload length, payload CRC32C
//	segidx.in    the same for the CSC direction
//	segdata.out  concatenated encoded CSR segment payloads
//	segdata.in   concatenated encoded CSC segment payloads
//
// Reads go through store.ContainerFile's random access: the table,
// segmeta and both indexes are fully verified at Open; segment payloads
// are fetched on demand with ReadAt and verified against their index
// CRC32C before a single byte is decoded — so no unverified data ever
// reaches a caller, yet opening a terabyte graph reads only kilobytes.
// Decoded segments live in a byte-budgeted LRU cache instrumented
// through internal/obs.
//
// All verification failures are typed *store.IntegrityError; corrupt
// inputs never panic (FuzzReadSegmented holds that line).
package segcsr

import (
	"fmt"

	"graphlocality/internal/store"
)

const (
	// FormatVersion is the segmeta format version this package writes
	// and the only one it reads.
	FormatVersion = 1

	// DefaultSegmentVertices is the default segment granularity: small
	// enough that a decoded segment of even a dense graph stays a few
	// MiB, large enough that per-segment overhead (24 index bytes, one
	// cache probe) is noise.
	DefaultSegmentVertices = 1 << 14

	// DefaultCacheBytes is the default decoded-segment cache budget.
	DefaultCacheBytes = 64 << 20

	// Section names inside the GLAS container.
	SectionMeta    = "segmeta"
	SectionIdxOut  = "segidx.out"
	SectionIdxIn   = "segidx.in"
	SectionDataOut = "segdata.out"
	SectionDataIn  = "segdata.in"

	// metaBytes is the fixed size of the segmeta section.
	metaBytes = 24
	// idxEntryBytes is the fixed size of one index entry.
	idxEntryBytes = 24
)

// corruptf builds the package's typed verification error.
func corruptf(format string, args ...any) error {
	return &store.IntegrityError{Reason: "segcsr: " + fmt.Sprintf(format, args...)}
}

// CSR is one direction's raw compressed-sparse-row input to Write:
// offsets (len |V|+1, monotone, Off[|V|] = |E|) and the concatenated
// ascending adjacency rows.
type CSR struct {
	Off []uint64
	Adj []uint32
}
