package segcsr

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphlocality/internal/obs"
	"graphlocality/internal/store"
)

// randCSR builds a random structurally valid CSR: n vertices, rows of
// random length with sorted ascending neighbours (duplicates allowed —
// the format supports parallel edges).
func randCSR(rng *rand.Rand, n uint32, maxDeg int) CSR {
	off := make([]uint64, n+1)
	adj := make([]uint32, 0)
	for v := uint32(0); v < n; v++ {
		deg := rng.Intn(maxDeg + 1)
		row := make([]int, deg)
		for i := range row {
			row[i] = rng.Intn(int(n))
		}
		// insertion sort keeps the helper dependency-free
		for i := 1; i < len(row); i++ {
			for j := i; j > 0 && row[j] < row[j-1]; j-- {
				row[j], row[j-1] = row[j-1], row[j]
			}
		}
		for _, u := range row {
			adj = append(adj, uint32(u))
		}
		off[v+1] = uint64(len(adj))
	}
	return CSR{Off: off, Adj: adj}
}

// transpose builds the CSC of a CSR.
func transpose(c CSR, n uint32) CSR {
	off := make([]uint64, n+1)
	for _, u := range c.Adj {
		off[u+1]++
	}
	for v := uint32(0); v < n; v++ {
		off[v+1] += off[v]
	}
	adj := make([]uint32, len(c.Adj))
	cur := make([]uint64, n)
	copy(cur, off[:n])
	for v := uint32(0); v < n; v++ {
		for _, u := range c.Adj[c.Off[v]:c.Off[v+1]] {
			adj[cur[u]] = v
			cur[u]++
		}
	}
	return CSR{Off: off, Adj: adj}
}

func writeTemp(t *testing.T, out, in CSR, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.segcsr")
	if _, err := Write(nil, path, out, in, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

// collect materializes a direction of an open File back into raw CSR
// arrays through the cursor API.
func collect(t *testing.T, f *File, in bool) CSR {
	t.Helper()
	n := f.NumVertices()
	out := CSR{Off: make([]uint64, 0, n+1), Adj: make([]uint32, 0)}
	cur := f.Rows(in, 0, n)
	next := uint32(0)
	for {
		base, off, adj, ok := cur.Next()
		if !ok {
			break
		}
		if base != next {
			t.Fatalf("span starts at %d, want %d", base, next)
		}
		if len(out.Off) == 0 {
			out.Off = append(out.Off, off[0])
		}
		if off[0] != out.Off[len(out.Off)-1] {
			t.Fatalf("span offset %d discontinuous with %d", off[0], out.Off[len(out.Off)-1])
		}
		out.Off = append(out.Off, off[1:]...)
		out.Adj = append(out.Adj, adj...)
		next = base + uint32(len(off)) - 1
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if n == 0 {
		out.Off = append(out.Off, 0)
	}
	if next != n {
		t.Fatalf("cursor stopped at %d, want %d", next, n)
	}
	return out
}

// TestRoundTrip is the property test: Write then Open reproduces the
// exact offsets and adjacency, across segment geometries including
// 1-vertex segments and a single all-covering segment.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []struct {
		name string
		n    uint32
		deg  int
	}{
		{"tiny", 5, 3},
		{"medium", 333, 9},
		{"empty-rows", 64, 1},
		{"single-vertex", 1, 4},
	}
	for _, gc := range graphs {
		out := randCSR(rng, gc.n, gc.deg)
		in := transpose(out, gc.n)
		for _, segVerts := range []int{1, 3, 16, int(gc.n), int(gc.n) + 100} {
			opts := Options{SegmentVertices: segVerts}
			path := writeTemp(t, out, in, opts)
			f, err := Open(path, opts)
			if err != nil {
				t.Fatalf("%s/seg=%d: Open: %v", gc.name, segVerts, err)
			}
			if f.NumVertices() != gc.n || f.NumEdges() != uint64(len(out.Adj)) {
				t.Fatalf("%s/seg=%d: dims %d/%d", gc.name, segVerts, f.NumVertices(), f.NumEdges())
			}
			gotOut := collect(t, f, false)
			gotIn := collect(t, f, true)
			if !reflect.DeepEqual(gotOut, out) || !reflect.DeepEqual(gotIn, in) {
				t.Fatalf("%s/seg=%d: round-trip mismatch", gc.name, segVerts)
			}
			// EdgeOffset agrees with the raw offsets at every vertex.
			for v := uint32(0); v <= gc.n; v++ {
				if got := f.EdgeOffset(false, v); got != out.Off[v] {
					t.Fatalf("%s/seg=%d: EdgeOffset(out,%d) = %d, want %d", gc.name, segVerts, v, got, out.Off[v])
				}
				if got := f.EdgeOffset(true, v); got != in.Off[v] {
					t.Fatalf("%s/seg=%d: EdgeOffset(in,%d) = %d, want %d", gc.name, segVerts, v, got, in.Off[v])
				}
			}
			if err := f.Err(); err != nil {
				t.Fatalf("%s/seg=%d: latched error: %v", gc.name, segVerts, err)
			}
			f.Close()
		}
	}
}

// TestRoundTripEmptyGraph pins the zero-vertex edge case.
func TestRoundTripEmptyGraph(t *testing.T) {
	empty := CSR{Off: []uint64{0}}
	path := writeTemp(t, empty, empty, Options{})
	f, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.NumVertices() != 0 || f.NumEdges() != 0 || f.Segments() != 0 {
		t.Fatalf("dims = %d/%d/%d, want zeros", f.NumVertices(), f.NumEdges(), f.Segments())
	}
	if _, _, _, ok := f.Rows(false, 0, 0).Next(); ok {
		t.Fatal("cursor over empty graph yielded a span")
	}
}

// TestEncodedBytesMatchesWrite pins Measure/EncodedBytes to the writer's
// actual payload sizes — the bytes/edge metric must be exactly what the
// on-disk format costs, and independent of segment geometry.
func TestEncodedBytesMatchesWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	out := randCSR(rng, 200, 8)
	in := transpose(out, 200)
	var want WriteStats
	for i, segVerts := range []int{1, 7, 64, 4096} {
		path := writeTemp(t, out, in, Options{SegmentVertices: segVerts})
		f, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Write(nil, path, out, in, Options{SegmentVertices: segVerts})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.OutPayloadBytes != EncodedBytes(out) || st.InPayloadBytes != EncodedBytes(in) {
			t.Fatalf("seg=%d: payload bytes %d/%d, EncodedBytes %d/%d",
				segVerts, st.OutPayloadBytes, st.InPayloadBytes, EncodedBytes(out), EncodedBytes(in))
		}
		if i == 0 {
			want = st
		} else if st.OutPayloadBytes != want.OutPayloadBytes || st.InPayloadBytes != want.InPayloadBytes {
			t.Fatalf("payload size depends on segment geometry: %v vs %v", st, want)
		}
		m := Measure(out, in, Options{SegmentVertices: segVerts})
		if m.OutPayloadBytes != st.OutPayloadBytes || m.NumEdges != st.NumEdges || m.Segments != st.Segments {
			t.Fatalf("Measure disagrees with Write: %+v vs %+v", m, st)
		}
	}
}

// TestCacheBudget asserts the strict budget invariant through both the
// direct stats and the obs gauges: peak resident bytes never exceed the
// budget, and a tiny budget forces evictions while still serving every
// read correctly.
func TestCacheBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out := randCSR(rng, 512, 6)
	in := transpose(out, 512)
	path := writeTemp(t, out, in, Options{SegmentVertices: 16})

	reg := obs.NewRegistry()
	budget := int64(2048)
	f, err := Open(path, Options{CacheBytes: budget, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Two full passes in both directions: the second pass re-decodes
	// whatever the budget evicted.
	for pass := 0; pass < 2; pass++ {
		got := collect(t, f, false)
		if !reflect.DeepEqual(got, out) {
			t.Fatalf("pass %d: out mismatch under tiny budget", pass)
		}
		got = collect(t, f, true)
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("pass %d: in mismatch under tiny budget", pass)
		}
	}
	resident, peak, _ := f.CacheStats()
	if resident > budget || peak > budget {
		t.Fatalf("cache exceeded budget: resident %d, peak %d, budget %d", resident, peak, budget)
	}
	if g := reg.Gauge("segcsr.cache.peak_bytes").Value(); g > float64(budget) {
		t.Fatalf("obs peak gauge %v exceeds budget %d", g, budget)
	}
	if reg.Counter("segcsr.cache.evictions").Value() == 0 {
		t.Fatal("tiny budget produced no evictions")
	}
	if reg.Counter("segcsr.cache.misses").Value() == 0 {
		t.Fatal("no misses recorded")
	}
}

// TestCacheHits: with an ample budget the second pass is all hits.
func TestCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	out := randCSR(rng, 128, 4)
	in := transpose(out, 128)
	path := writeTemp(t, out, in, Options{SegmentVertices: 8})
	reg := obs.NewRegistry()
	f, err := Open(path, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	collect(t, f, false)
	misses := reg.Counter("segcsr.cache.misses").Value()
	collect(t, f, false)
	if got := reg.Counter("segcsr.cache.misses").Value(); got != misses {
		t.Fatalf("second pass missed (%d → %d) despite ample budget", misses, got)
	}
	if reg.Counter("segcsr.cache.hits").Value() == 0 {
		t.Fatal("no hits recorded")
	}
}

func isIntegrity(err error) bool {
	var ie *store.IntegrityError
	return errors.As(err, &ie)
}

// TestCorruption flips bytes in the written file and expects typed
// integrity errors from open (index/meta damage — those sections are
// container-CRC-verified) or from segment reads (payload damage — caught
// by the per-segment CRC in the index).
func TestCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	out := randCSR(rng, 100, 5)
	in := transpose(out, 100)
	path := writeTemp(t, out, in, Options{SegmentVertices: 10})
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every single-byte flip anywhere in the file must be caught by one
	// CRC layer or another. Probe a spread of positions.
	for pos := 0; pos < len(pristine); pos += 37 {
		mutated := append([]byte(nil), pristine...)
		mutated[pos] ^= 0x20
		p := filepath.Join(t.TempDir(), "bad.segcsr")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(p, Options{})
		if err != nil {
			if !isIntegrity(err) {
				t.Fatalf("pos %d: open error not typed: %v", pos, err)
			}
			continue
		}
		caught := false
		for _, in := range []bool{false, true} {
			for s := 0; s < f.Segments(); s++ {
				if _, err := f.Segment(in, s); err != nil {
					if !isIntegrity(err) {
						t.Fatalf("pos %d: segment error not typed: %v", pos, err)
					}
					caught = true
				}
			}
		}
		if !caught {
			t.Fatalf("pos %d: single-byte flip escaped verification", pos)
		}
		if f.Err() == nil {
			t.Fatalf("pos %d: File.Err() not latched", pos)
		}
		f.Close()
	}
}

// TestCursorEndsOnCorruption: a cursor crossing a damaged segment stops
// early and reports through Err rather than returning bad spans.
func TestCursorEndsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	out := randCSR(rng, 60, 5)
	in := transpose(out, 60)
	path := writeTemp(t, out, in, Options{SegmentVertices: 10})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end: inside the in-direction payload, leaving
	// the header/indexes (early bytes) intact so Open succeeds.
	raw[len(raw)-3] ^= 0xFF
	p := filepath.Join(t.TempDir(), "tail.segcsr")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(p, Options{})
	if err != nil {
		if !isIntegrity(err) {
			t.Fatalf("open error not typed: %v", err)
		}
		return
	}
	defer f.Close()
	cur := f.Rows(true, 0, f.NumVertices())
	for {
		if _, _, _, ok := cur.Next(); !ok {
			break
		}
	}
	if cur.Err() == nil || !isIntegrity(cur.Err()) {
		t.Fatalf("cursor over damaged payload: Err = %v, want *IntegrityError", cur.Err())
	}
	if f.Err() == nil {
		t.Fatal("File.Err() not latched by cursor failure")
	}
}
