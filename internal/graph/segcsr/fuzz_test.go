package segcsr

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"graphlocality/internal/store"
)

// fuzzSeeds builds the seed corpus for FuzzReadSegmented: a valid file,
// a truncated index, payloads whose CRC32C matches but whose varint
// structure is broken in each interesting way, and a CRC-flipped
// payload. The same seeds are committed under testdata/fuzz (see
// TestWriteFuzzCorpus) so `go test` always exercises them.
func fuzzSeeds() [][]byte {
	var seeds [][]byte

	// Seed 0: a pristine small graph.
	rng := rand.New(rand.NewSource(42))
	out := randCSRSeed(rng, 20, 4)
	in := transposeSeed(out, 20)
	valid := writeBytes(out, in, 4)
	seeds = append(seeds, valid)

	// Seed 1: truncated mid-index (container table will disown it).
	seeds = append(seeds, valid[:len(valid)*2/3])

	// Seed 2: CRC-flipped segment payload — container framing passes
	// (payload sections are unverified at that layer), the per-segment
	// CRC must catch it. Flip the last payload byte and rebuild the
	// container so only the inner check can object.
	seeds = append(seeds, flipLastPayloadByte(out, in, 4))

	// Seeds 3..: hand-built containers whose payload CRCs match but whose
	// payload bytes are structurally corrupt, exercising each decode
	// rejection: unterminated varint, degree overflow, neighbour out of
	// range, edge-count mismatch, trailing bytes.
	for _, payload := range [][]byte{
		{0x03, 0x80, 0x80, 0x80, 0x80},       // deg 3, then a gap varint that never terminates
		{0xFF, 0x01, 0x00, 0x00, 0x00, 0x00}, // degree 255 overflows the index's 3 edges
		{0x01, 0x0C, 0x00, 0x01, 0x02},       // first neighbour zigzag(12>>1=6) ≥ n
		{0x01, 0x00, 0x01, 0x00, 0x00},       // decodes 2 edges, index claims 3
		{0x02, 0x00, 0x00, 0x01, 0x00, 0x00}, // valid rows, then trailing bytes
	} {
		seeds = append(seeds, handCraft(2, 3, 2, payload))
	}
	return seeds
}

// randCSRSeed/transposeSeed mirror the helpers in segcsr_test.go but are
// reproduced here so the fuzz file stands alone if the unit tests move.
func randCSRSeed(rng *rand.Rand, n uint32, maxDeg int) CSR { return randCSR(rng, n, maxDeg) }
func transposeSeed(c CSR, n uint32) CSR                    { return transpose(c, n) }

// writeBytes serializes a graph to bytes via the real writer.
func writeBytes(out, in CSR, segVerts int) []byte {
	dir, err := os.MkdirTemp("", "segcsr-fuzz")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.segcsr")
	if _, err := Write(nil, path, out, in, Options{SegmentVertices: segVerts}); err != nil {
		panic(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return raw
}

// flipLastPayloadByte rebuilds the container with the final in-direction
// payload byte flipped but the outer container framing recomputed, so
// only the per-segment CRC can notice.
func flipLastPayloadByte(out, in CSR, segVerts int) []byte {
	raw := writeBytes(out, in, segVerts)
	secs, err := store.ReadContainer(bytes.NewReader(raw))
	if err != nil {
		panic(err)
	}
	for i := range secs {
		if secs[i].Name == SectionDataIn && len(secs[i].Data) > 0 {
			secs[i].Data[len(secs[i].Data)-1] ^= 0x55
		}
	}
	var buf bytes.Buffer
	if err := store.WriteContainer(&buf, secs); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// handCraft builds a syntactically valid single-segment container for a
// 2-vertex graph whose payload bytes are attacker-chosen but CRC-clean.
func handCraft(n uint32, m uint64, segVerts uint32, payload []byte) []byte {
	meta := make([]byte, metaBytes)
	binary.LittleEndian.PutUint32(meta[0:], FormatVersion)
	binary.LittleEndian.PutUint32(meta[4:], n)
	binary.LittleEndian.PutUint64(meta[8:], m)
	binary.LittleEndian.PutUint32(meta[16:], segVerts)
	binary.LittleEndian.PutUint32(meta[20:], 1)
	idx := make([]byte, idxEntryBytes)
	binary.LittleEndian.PutUint32(idx[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(idx[20:], crc32.Checksum(payload, castagnoli))
	var buf bytes.Buffer
	if err := store.WriteContainer(&buf, []store.Section{
		{Name: SectionMeta, Data: meta},
		{Name: SectionIdxOut, Data: idx},
		{Name: SectionIdxIn, Data: idx},
		{Name: SectionDataOut, Data: payload},
		{Name: SectionDataIn, Data: payload},
	}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadSegmented is the crash wall: arbitrary bytes fed through Open
// and a full read of every segment, row span and edge offset must either
// succeed or fail with a typed *store.IntegrityError — never panic,
// never return an untyped error, never hand back structurally invalid
// rows.
func FuzzReadSegmented(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.segcsr")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		g, err := Open(path, Options{CacheBytes: 1 << 20})
		if err != nil {
			if !isIntegrity(err) {
				t.Fatalf("open error not typed: %v", err)
			}
			return
		}
		defer g.Close()
		n := g.NumVertices()
		for _, in := range []bool{false, true} {
			cur := g.Rows(in, 0, n)
			var edges uint64
			prevEnd := uint64(0)
			for {
				base, off, adj, ok := cur.Next()
				if !ok {
					break
				}
				// Structural contract on every span that escapes.
				if len(off) < 2 || uint64(len(adj)) != off[len(off)-1]-off[0] {
					t.Fatalf("span at %d: off len %d, adj len %d", base, len(off), len(adj))
				}
				if base != 0 && off[0] != prevEnd {
					t.Fatalf("span at %d: discontinuous offsets", base)
				}
				prevEnd = off[len(off)-1]
				for _, u := range adj {
					if u >= n {
						t.Fatalf("neighbour %d out of range (n=%d)", u, n)
					}
				}
				edges += uint64(len(adj))
			}
			if err := cur.Err(); err != nil && !isIntegrity(err) {
				t.Fatalf("cursor error not typed: %v", err)
			}
			if cur.Err() == nil && edges != g.NumEdges() {
				t.Fatalf("clean read produced %d edges, meta says %d", edges, g.NumEdges())
			}
			for v := uint32(0); v <= n && v <= 64; v++ {
				g.EdgeOffset(in, v)
			}
		}
		if err := g.Err(); err != nil && !isIntegrity(err) {
			t.Fatalf("latched error not typed: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzReadSegmented when SEGCSR_WRITE_CORPUS=1. The files
// use the go-fuzz v1 encoding, so `go test` replays them as part of the
// normal (non-fuzzing) run.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SEGCSR_WRITE_CORPUS") == "" {
		t.Skip("set SEGCSR_WRITE_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadSegmented")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
