package segcsr

import (
	"container/list"
	"sync"

	"graphlocality/internal/obs"
)

// segKey identifies one decoded segment: direction × segment index.
type segKey struct {
	in  bool
	seg int
}

// segment is one decoded segment resident in the cache.
type segment struct {
	off []uint64 // absolute offsets, len = vertices+1, off[0] = firstEdge
	adj []uint32
}

func (s *segment) bytes() int64 {
	return int64(len(s.off))*8 + int64(len(s.adj))*4
}

// segCache is a byte-budgeted LRU over decoded segments. The eviction
// discipline is evict-before-insert, and a segment whose decoded size
// alone exceeds the budget is returned to the caller but never cached —
// together those make "resident bytes ≤ budget" a strict invariant, not
// a high-water heuristic, which is what the budget-bounded acceptance
// test asserts through the obs gauges.
//
// Instrumentation (all nil-safe through obs):
//
//	segcsr.cache.hits / misses / evictions   counters
//	segcsr.cache.resident_bytes / resident_segments / peak_bytes  gauges
type segCache struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	peak     int64
	entries  map[segKey]*list.Element
	lru      *list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions *obs.Counter
	gBytes, gSegs, gPeak    *obs.Gauge
}

type cacheEntry struct {
	key segKey
	seg *segment
}

func newSegCache(budget int64, rec obs.Recorder) *segCache {
	rec = obs.Of(rec)
	return &segCache{
		budget:    budget,
		entries:   make(map[segKey]*list.Element),
		lru:       list.New(),
		hits:      rec.Counter("segcsr.cache.hits"),
		misses:    rec.Counter("segcsr.cache.misses"),
		evictions: rec.Counter("segcsr.cache.evictions"),
		gBytes:    rec.Gauge("segcsr.cache.resident_bytes"),
		gSegs:     rec.Gauge("segcsr.cache.resident_segments"),
		gPeak:     rec.Gauge("segcsr.cache.peak_bytes"),
	}
}

// get returns the cached segment and marks it most-recently-used, or nil
// on a miss.
func (c *segCache) get(k segKey) *segment {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheEntry).seg
	}
	c.misses.Inc()
	return nil
}

// put inserts a freshly decoded segment, evicting LRU entries first so
// resident bytes never exceed the budget. Oversize segments (and a
// duplicate insert racing with another reader) leave the cache untouched.
func (c *segCache) put(k segKey, s *segment) {
	sz := s.bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.budget {
		return
	}
	if _, ok := c.entries[k]; ok {
		return
	}
	for c.resident+sz > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ent.key)
		c.resident -= ent.seg.bytes()
		c.evictions.Inc()
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, seg: s})
	c.resident += sz
	if c.resident > c.peak {
		c.peak = c.resident
		c.gPeak.Set(float64(c.peak))
	}
	c.gBytes.Set(float64(c.resident))
	c.gSegs.Set(float64(c.lru.Len()))
}

// stats returns the current and peak resident byte counts.
func (c *segCache) stats() (resident, peak int64, segments int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident, c.peak, c.lru.Len()
}
