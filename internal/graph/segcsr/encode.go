package segcsr

import "encoding/binary"

// Segment payload codec. A segment covers vertices [lo, hi); its payload
// is, per vertex in order: uvarint(degree), then the row's gaps —
// zig-zag varint(first neighbour − vertex ID) and uvarint(neighbour −
// predecessor) for the rest (rows are sorted ascending, so later gaps
// are non-negative; equal neighbours — parallel edges — encode as gap
// 0). The decoder re-derives absolute offsets from the segment's first
// edge index, so payloads are self-contained given the index entry.

func zigzag(x int64) uint64 {
	return uint64((x << 1) ^ (x >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// appendSegment encodes the rows of vertices [lo, hi) from the raw CSR
// arrays onto dst and returns the extended slice.
func appendSegment(dst []byte, c CSR, lo, hi uint32) []byte {
	for v := lo; v < hi; v++ {
		row := c.Adj[c.Off[v]:c.Off[v+1]]
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		prev := int64(v)
		for i, u := range row {
			if i == 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(u)-prev))
			} else {
				dst = binary.AppendUvarint(dst, uint64(int64(u)-prev))
			}
			prev = int64(u)
		}
	}
	return dst
}

// EncodedBytes returns the exact payload size of the whole adjacency
// under the segment codec, without materializing it. The encoding is
// per-vertex, so the result is independent of segment geometry — which
// makes bytes/edge (EncodedBytes / |E|) a representation-free
// compression metric per ordering.
func EncodedBytes(c CSR) uint64 {
	var total uint64
	n := uint32(len(c.Off) - 1)
	for v := uint32(0); v < n; v++ {
		row := c.Adj[c.Off[v]:c.Off[v+1]]
		total += uint64(uvarintLen(uint64(len(row))))
		prev := int64(v)
		for i, u := range row {
			if i == 0 {
				total += uint64(uvarintLen(zigzag(int64(u) - prev)))
			} else {
				total += uint64(uvarintLen(uint64(int64(u) - prev)))
			}
			prev = int64(u)
		}
	}
	return total
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// decodeSegment decodes one verified segment payload covering vertices
// [lo, hi) whose rows span absolute edge indices [firstEdge,
// firstEdge+edges). It returns absolute offsets (len hi-lo+1, off[0] =
// firstEdge) and the rows' neighbours. Every structural claim is
// checked — varint termination, degree sums, neighbour bounds, row
// sortedness, exact payload consumption — and any violation is a typed
// *store.IntegrityError, so a payload that collides with its CRC32C
// still cannot smuggle an invalid row into the simulator (or panic it).
func decodeSegment(payload []byte, lo, hi, n uint32, firstEdge, edges uint64) ([]uint64, []uint32, error) {
	nv := int(hi - lo)
	off := make([]uint64, nv+1)
	adj := make([]uint32, 0, edges)
	off[0] = firstEdge
	pos := 0
	next := func() (uint64, bool) {
		u, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return 0, false
		}
		pos += k
		return u, true
	}
	for i := 0; i < nv; i++ {
		deg, ok := next()
		if !ok {
			return nil, nil, corruptf("segment [%d,%d): vertex %d: bad degree varint at byte %d", lo, hi, lo+uint32(i), pos)
		}
		// No standalone degree bound: parallel edges legally push a
		// degree past |V|. The edge-count check below bounds both loop
		// work and memory (adj's capacity is the index's edge count,
		// itself bounded by real payload bytes at index parse).
		if uint64(len(adj))+deg > edges {
			return nil, nil, corruptf("segment [%d,%d): rows overflow the %d edges the index assigns", lo, hi, edges)
		}
		prev := int64(lo + uint32(i))
		for k := uint64(0); k < deg; k++ {
			gap, ok := next()
			if !ok {
				return nil, nil, corruptf("segment [%d,%d): vertex %d: bad gap varint at byte %d", lo, hi, lo+uint32(i), pos)
			}
			var u int64
			if k == 0 {
				u = prev + unzigzag(gap)
			} else {
				u = prev + int64(gap)
			}
			if u < 0 || u >= int64(n) {
				return nil, nil, corruptf("segment [%d,%d): vertex %d: neighbour %d out of range (n=%d)", lo, hi, lo+uint32(i), u, n)
			}
			adj = append(adj, uint32(u))
			prev = u
		}
		off[i+1] = firstEdge + uint64(len(adj))
	}
	if uint64(len(adj)) != edges {
		return nil, nil, corruptf("segment [%d,%d): decoded %d edges, index claims %d", lo, hi, len(adj), edges)
	}
	if pos != len(payload) {
		return nil, nil, corruptf("segment [%d,%d): %d trailing payload bytes", lo, hi, len(payload)-pos)
	}
	return off, adj, nil
}
