package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponentsSimple(t *testing.T) {
	// Two components: {0,1,2} via directed chain, {3,4}.
	g := FromEdges(5, []Edge{{0, 1}, {2, 1}, {3, 4}})
	labels, k := g.ConnectedComponents()
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component (undirected view)")
	}
	if labels[3] != labels[4] {
		t.Error("3,4 should share a component")
	}
	if labels[0] == labels[3] {
		t.Error("components should differ")
	}
}

func TestConnectedComponentsIsolated(t *testing.T) {
	g := FromEdges(3, nil)
	labels, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	seen := map[uint32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Error("isolated vertices share labels")
		}
		seen[l] = true
	}
}

func TestComponentsExcluding(t *testing.T) {
	// Star: 0 is the hub. Removing it isolates the leaves.
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	removed := []bool{true, false, false, false}
	labels, k := g.ComponentsExcluding(removed)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if labels[0] != NoVertex {
		t.Error("removed vertex must be labeled NoVertex")
	}
}

func TestComponentSizes(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {2, 1}, {3, 4}})
	labels, k := g.ConnectedComponents()
	sizes := ComponentSizes(labels, k)
	total := uint32(0)
	for _, s := range sizes {
		total += s
	}
	if total != 5 {
		t.Errorf("sizes sum to %d, want 5", total)
	}
}

func TestGiantComponent(t *testing.T) {
	// Component A: triangle (3 edges). Component B: single edge.
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	labels, k := g.ConnectedComponents()
	gcc := g.GiantComponent(labels, k)
	if gcc != labels[0] {
		t.Errorf("GCC = %d, want the triangle's label %d", gcc, labels[0])
	}
	if g.GiantComponent(nil, 0) != NoVertex {
		t.Error("GCC of empty labeling should be NoVertex")
	}
}

// Property: components partition the vertex set; every edge's endpoints
// share a label.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(80) + 1)
		g := randomGraph(rng, n, rng.Intn(200))
		labels, k := g.ConnectedComponents()
		for _, l := range labels {
			if l >= k {
				return false
			}
		}
		for _, e := range g.Edges() {
			if labels[e.Src] != labels[e.Dst] {
				return false
			}
		}
		sizes := ComponentSizes(labels, k)
		var total uint32
		for _, s := range sizes {
			if s == 0 {
				return false // no empty components
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
