package graph

// Range is a half-open contiguous vertex interval [Lo, Hi).
type Range struct {
	Lo, Hi uint32
}

// Len returns the number of vertices in the range.
func (r Range) Len() uint32 { return r.Hi - r.Lo }

// PartitionEdgeBalancedOut splits the vertex set into at most p contiguous
// ranges with approximately equal numbers of *out*-edges, the
// edge-balanced partitioning the paper's runtime uses for parallel SpMV
// (§III-B, following GraphGrind). Empty trailing ranges are dropped, so
// fewer than p ranges may be returned for small graphs.
func (g *Graph) PartitionEdgeBalancedOut(p int) []Range {
	return partitionByOffsets(g.outOff, g.n, p)
}

// PartitionEdgeBalancedIn splits the vertex set into at most p contiguous
// ranges with approximately equal numbers of *in*-edges (for pull
// traversals over the CSC).
func (g *Graph) PartitionEdgeBalancedIn(p int) []Range {
	return partitionByOffsets(g.inOff, g.n, p)
}

func partitionByOffsets(off []uint64, n uint32, p int) []Range {
	return partitionByOffsetFn(func(v uint32) uint64 { return off[v] }, n, p)
}

// partitionByOffsetFn is the partitioner over an offset accessor instead
// of a materialized array, so segment-backed graphs produce *identical*
// partition boundaries to the in-RAM graph (the emulated-parallel
// interleaved access stream depends on them being the same). Queries are
// monotonically non-decreasing after the initial off(n) total, which
// keeps a segment-cursor implementation cheap.
func partitionByOffsetFn(off func(uint32) uint64, n uint32, p int) []Range {
	if p < 1 {
		p = 1
	}
	total := off(n)
	ranges := make([]Range, 0, p)
	var lo uint32
	for i := 0; i < p && lo < n; i++ {
		// Edges this partition should own: even split of the remainder.
		offLo := off(lo)
		target := offLo + (total-offLo)/uint64(p-i)
		hi := lo + 1 // at least one vertex per partition
		for hi < n && off(hi) < target {
			hi++
		}
		if i == p-1 {
			hi = n
		}
		ranges = append(ranges, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	if lo < n && len(ranges) > 0 {
		ranges[len(ranges)-1].Hi = n
	}
	return ranges
}
