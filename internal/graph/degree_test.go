package graph

import "testing"

func TestDegreeSlices(t *testing.T) {
	g := diamond()
	out := g.OutDegrees()
	in := g.InDegrees()
	total := g.TotalDegrees()
	for v := uint32(0); v < g.NumVertices(); v++ {
		if out[v] != g.OutDegree(v) {
			t.Errorf("OutDegrees[%d] = %d", v, out[v])
		}
		if in[v] != g.InDegree(v) {
			t.Errorf("InDegrees[%d] = %d", v, in[v])
		}
		if total[v] != out[v]+in[v] {
			t.Errorf("TotalDegrees[%d] = %d, want %d", v, total[v], out[v]+in[v])
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram([]uint32{1, 2, 2, 3, 3, 3})
	if h[1] != 1 || h[2] != 2 || h[3] != 3 {
		t.Errorf("histogram = %v", h)
	}
	if len(DegreeHistogram(nil)) != 0 {
		t.Error("empty histogram should be empty")
	}
}

func TestVerticesByDegree(t *testing.T) {
	deg := []uint32{5, 1, 5, 3}
	desc := VerticesByDegreeDesc(deg)
	// Degrees 5,5,3,1 with ID tiebreak ascending: 0,2,3,1.
	want := []uint32{0, 2, 3, 1}
	for i := range want {
		if desc[i] != want[i] {
			t.Fatalf("desc = %v, want %v", desc, want)
		}
	}
	asc := VerticesByDegreeAsc(deg)
	wantAsc := []uint32{1, 3, 0, 2}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] {
			t.Fatalf("asc = %v, want %v", asc, wantAsc)
		}
	}
}

func TestAccessorSlices(t *testing.T) {
	g := diamond()
	if len(g.OutOffsets()) != int(g.NumVertices())+1 {
		t.Error("OutOffsets length")
	}
	if len(g.InOffsets()) != int(g.NumVertices())+1 {
		t.Error("InOffsets length")
	}
	if uint64(len(g.OutEdges())) != g.NumEdges() {
		t.Error("OutEdges length")
	}
	if uint64(len(g.InEdges())) != g.NumEdges() {
		t.Error("InEdges length")
	}
	// Offsets index the edges arrays consistently.
	off := g.OutOffsets()
	adj := g.OutEdges()
	for v := uint32(0); v < g.NumVertices(); v++ {
		nbrs := adj[off[v]:off[v+1]]
		want := g.OutNeighbors(v)
		if len(nbrs) != len(want) {
			t.Fatalf("accessor mismatch at %d", v)
		}
		for i := range nbrs {
			if nbrs[i] != want[i] {
				t.Fatalf("accessor mismatch at %d", v)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	// Hand-corrupt internal state and check Validate notices.
	fresh := func() *Graph { return diamond() }

	g := fresh()
	g.outOff = g.outOff[:2]
	if g.Validate() == nil {
		t.Error("short offsets accepted")
	}

	g = fresh()
	g.outOff[0] = 1
	if g.Validate() == nil {
		t.Error("nonzero first offset accepted")
	}

	g = fresh()
	g.outOff[g.n] = 99
	if g.Validate() == nil {
		t.Error("bad tail offset accepted")
	}

	g = fresh()
	g.inAdj = g.inAdj[:len(g.inAdj)-1]
	if g.Validate() == nil {
		t.Error("CSR/CSC count mismatch accepted")
	}

	g = fresh()
	g.outOff[1], g.outOff[2] = g.outOff[2], g.outOff[1]-1
	if g.Validate() == nil {
		t.Error("non-monotone offsets accepted")
	}

	g = fresh()
	g.outAdj[0] = 99
	if g.Validate() == nil {
		t.Error("out-of-range neighbour accepted")
	}

	g = fresh()
	if len(g.outAdj) >= 2 && g.outAdj[0] < g.outAdj[1] {
		g.outAdj[0], g.outAdj[1] = g.outAdj[1], g.outAdj[0]
		if g.Validate() == nil {
			t.Error("unsorted adjacency accepted")
		}
	}

	g = fresh()
	g.inAdj[len(g.inAdj)-1] = 98
	if g.Validate() == nil {
		t.Error("bad in-adjacency accepted")
	}
}

func TestGiantComponentTieBreak(t *testing.T) {
	// Two components with equal edge counts: the smaller label wins.
	g := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	labels, k := g.ConnectedComponents()
	if k != 2 {
		t.Fatal("want 2 components")
	}
	if gcc := g.GiantComponent(labels, k); gcc != labels[0] {
		t.Errorf("tie should go to the smaller label, got %d", gcc)
	}
}
