package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedSubgraphBasic(t *testing.T) {
	g := diamond() // 0->1, 0->2, 1->3, 2->3, 3->0
	sub, mapping := g.InducedSubgraph([]bool{true, true, false, true})
	if sub.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", sub.NumVertices())
	}
	// Kept: 0->1, 1->3, 3->0 under new IDs 0,1,2.
	if sub.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", sub.NumEdges())
	}
	if mapping[2] != NoVertex {
		t.Error("dropped vertex not marked")
	}
	if !sub.HasEdge(mapping[0], mapping[1]) || !sub.HasEdge(mapping[1], mapping[3]) ||
		!sub.HasEdge(mapping[3], mapping[0]) {
		t.Error("edges not remapped correctly")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphPanicsOnBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short mask did not panic")
		}
	}()
	diamond().InducedSubgraph([]bool{true})
}

func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(60) + 1)
		g := randomGraph(rng, n, rng.Intn(250))
		keep := make([]bool, n)
		kept := uint32(0)
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
			if keep[i] {
				kept++
			}
		}
		sub, mapping := g.InducedSubgraph(keep)
		if sub.NumVertices() != kept || sub.Validate() != nil {
			return false
		}
		// Every surviving edge's preimage exists; count matches.
		var want uint64
		for _, e := range g.Edges() {
			if keep[e.Src] && keep[e.Dst] {
				want++
				if !sub.HasEdge(mapping[e.Src], mapping[e.Dst]) {
					return false
				}
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
