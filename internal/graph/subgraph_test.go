package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubgraphViewBasic(t *testing.T) {
	g := diamond() // 0->1, 0->2, 1->3, 2->3, 3->0
	views := g.PartitionByMembership([]uint32{0, 0, 1, 0}, 2)
	if len(views) != 2 {
		t.Fatalf("views = %d, want 2", len(views))
	}
	sv := views[0]
	if sv.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", sv.NumVertices())
	}
	// Members 0,1,3 get local IDs 0,1,2 in ascending global order.
	for l, want := range []uint32{0, 1, 3} {
		if sv.Global(uint32(l)) != want {
			t.Errorf("Global(%d) = %d, want %d", l, sv.Global(uint32(l)), want)
		}
		if sv.Local(want) != uint32(l) {
			t.Errorf("Local(%d) = %d, want %d", want, sv.Local(want), l)
		}
	}
	if sv.Local(2) != NoVertex || sv.Contains(2) {
		t.Error("non-member 2 not rejected")
	}
	// Internal edges: 0->1, 1->3, 3->0 (0->2 and 2->3 cross the cut).
	if sv.NumInternalEdges() != 3 {
		t.Errorf("internal edges = %d, want 3", sv.NumInternalEdges())
	}
	if d := sv.OutDegree(0); d != 1 {
		t.Errorf("local OutDegree(0) = %d, want 1", d)
	}
	deg := sv.InternalDegrees()
	for l, want := range []uint32{2, 2, 2} { // each member: 1 in + 1 out internal
		if deg[l] != want {
			t.Errorf("InternalDegrees[%d] = %d, want %d", l, deg[l], want)
		}
	}
	var edges [][2]uint32
	sv.EachInternalOut(func(src, dst uint32) { edges = append(edges, [2]uint32{src, dst}) })
	if len(edges) != 3 {
		t.Fatalf("EachInternalOut visited %d edges, want 3", len(edges))
	}

	sub := sv.Materialize()
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("materialized %v, want |V|=3 |E|=3", sub)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(2, 0) {
		t.Error("materialized edges wrong")
	}
}

func TestSubgraphSingleBlockMaterializesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 80, 400)
	views := g.PartitionByMembership(make([]uint32, 80), 1)
	sub := views[0].Materialize()
	if !g.Equal(sub) {
		t.Error("single-block materialization is not the identity embedding")
	}
}

func TestSubgraphPanicsOnBadMembership(t *testing.T) {
	g := diamond()
	for name, fn := range map[string]func(){
		"short":        func() { g.PartitionByMembership([]uint32{0}, 1) },
		"out-of-range": func() { g.PartitionByMembership([]uint32{0, 0, 5, 0}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s membership did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSubgraphViewMatchesInducedSubgraph pins the view against the
// existing copying implementation: for a random partition, every block's
// materialization must equal InducedSubgraph over the same member mask,
// and the view's degree/edge accounting must agree with the materialized
// graph.
func TestSubgraphViewMatchesInducedSubgraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(60) + 1)
		g := randomGraph(rng, n, rng.Intn(250))
		count := rng.Intn(4) + 1
		membership := make([]uint32, n)
		for v := range membership {
			membership[v] = uint32(rng.Intn(count))
		}
		views := g.PartitionByMembership(membership, count)
		var covered uint32
		for c, sv := range views {
			covered += sv.NumVertices()
			keep := make([]bool, n)
			for v := uint32(0); v < n; v++ {
				keep[v] = membership[v] == uint32(c)
			}
			want, mapping := g.InducedSubgraph(keep)
			got := sv.Materialize()
			if !got.Equal(want) {
				return false
			}
			if got.Validate() != nil {
				return false
			}
			// The view's local IDs must agree with InducedSubgraph's
			// ascending renumbering.
			for v := uint32(0); v < n; v++ {
				if keep[v] && sv.Local(v) != mapping[v] {
					return false
				}
			}
			if sv.NumInternalEdges() != want.NumEdges() {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraphBasic(t *testing.T) {
	g := diamond() // 0->1, 0->2, 1->3, 2->3, 3->0
	sub, mapping := g.InducedSubgraph([]bool{true, true, false, true})
	if sub.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", sub.NumVertices())
	}
	// Kept: 0->1, 1->3, 3->0 under new IDs 0,1,2.
	if sub.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", sub.NumEdges())
	}
	if mapping[2] != NoVertex {
		t.Error("dropped vertex not marked")
	}
	if !sub.HasEdge(mapping[0], mapping[1]) || !sub.HasEdge(mapping[1], mapping[3]) ||
		!sub.HasEdge(mapping[3], mapping[0]) {
		t.Error("edges not remapped correctly")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphPanicsOnBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short mask did not panic")
		}
	}()
	diamond().InducedSubgraph([]bool{true})
}

func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(rng.Intn(60) + 1)
		g := randomGraph(rng, n, rng.Intn(250))
		keep := make([]bool, n)
		kept := uint32(0)
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
			if keep[i] {
				kept++
			}
		}
		sub, mapping := g.InducedSubgraph(keep)
		if sub.NumVertices() != kept || sub.Validate() != nil {
			return false
		}
		// Every surviving edge's preimage exists; count matches.
		var want uint64
		for _, e := range g.Edges() {
			if keep[e.Src] && keep[e.Dst] {
				want++
				if !sub.HasEdge(mapping[e.Src], mapping[e.Dst]) {
					return false
				}
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
