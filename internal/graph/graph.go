// Package graph provides the compressed sparse row/column (CSR/CSC) graph
// representation used throughout the locality-analysis toolkit.
//
// Following the paper's §II-A, topology data consists of an offsets array of
// |V|+1 elements of 8 bytes each ([]uint64) and an edges array of |E|
// elements of 4 bytes each ([]uint32). The CSR edges array holds the
// destination of each out-edge; the CSC edges array holds the source of each
// in-edge. Vertex data arrays are indexed directly by vertex ID.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst uint32
}

// Graph is a directed graph stored in both CSR (out-edges) and CSC
// (in-edges) form. Adjacency lists are sorted in ascending order of
// neighbour ID, which several metrics (AID, asymmetricity) rely on.
//
// The zero value is an empty graph with no vertices.
type Graph struct {
	n uint32

	// CSR: out-edges. outOff has n+1 entries; outAdj[outOff[v]:outOff[v+1]]
	// are the destinations of v's out-edges, ascending.
	outOff []uint64
	outAdj []uint32

	// CSC: in-edges. inAdj[inOff[v]:inOff[v+1]] are the sources of v's
	// in-edges, ascending.
	inOff []uint64
	inAdj []uint32
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() uint32 { return g.n }

// NumEdges returns |E|.
func (g *Graph) NumEdges() uint64 { return uint64(len(g.outAdj)) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v uint32) uint32 {
	return uint32(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v uint32) uint32 {
	return uint32(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the destinations of v's out-edges in ascending
// order. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) OutNeighbors(v uint32) []uint32 {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the sources of v's in-edges in ascending order. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutOffsets returns the CSR offsets array (len |V|+1). The slice aliases
// internal storage and must not be modified.
func (g *Graph) OutOffsets() []uint64 { return g.outOff }

// InOffsets returns the CSC offsets array (len |V|+1). The slice aliases
// internal storage and must not be modified.
func (g *Graph) InOffsets() []uint64 { return g.inOff }

// OutEdges returns the CSR edges array. Must not be modified.
func (g *Graph) OutEdges() []uint32 { return g.outAdj }

// InEdges returns the CSC edges array. Must not be modified.
func (g *Graph) InEdges() []uint32 { return g.inAdj }

// AverageDegree returns |E|/|V|, the paper's threshold between low-degree
// and high-degree vertices. It returns 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.n)
}

// HubThreshold returns √|V|, the paper's hub threshold: a vertex is an
// in-hub (out-hub) if its in-degree (out-degree) exceeds this value.
func (g *Graph) HubThreshold() float64 {
	return math.Sqrt(float64(g.n))
}

// IsInHub reports whether v's in-degree exceeds √|V|.
func (g *Graph) IsInHub(v uint32) bool {
	return float64(g.InDegree(v)) > g.HubThreshold()
}

// IsOutHub reports whether v's out-degree exceeds √|V|.
func (g *Graph) IsOutHub(v uint32) bool {
	return float64(g.OutDegree(v)) > g.HubThreshold()
}

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() uint32 {
	var m uint32
	for v := uint32(0); v < g.n; v++ {
		if d := g.OutDegree(v); d > m {
			m = d
		}
	}
	return m
}

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() uint32 {
	var m uint32
	for v := uint32(0); v < g.n; v++ {
		if d := g.InDegree(v); d > m {
			m = d
		}
	}
	return m
}

// Edges returns all edges of the graph in CSR order. The slice is freshly
// allocated.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		for _, u := range g.OutNeighbors(v) {
			es = append(es, Edge{Src: v, Dst: u})
		}
	}
	return es
}

// HasEdge reports whether the edge (u,v) exists, via binary search on u's
// sorted out-adjacency.
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Reverse returns the transpose graph: every edge (u,v) becomes (v,u).
// Because Graph stores both CSR and CSC, this is a cheap view swap.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n:      g.n,
		outOff: g.inOff,
		outAdj: g.inAdj,
		inOff:  g.outOff,
		inAdj:  g.outAdj,
	}
}

// Undirected returns the symmetrized graph: for every edge (u,v) both
// (u,v) and (v,u) exist, with duplicates removed. Self-loops are kept as a
// single directed self-edge in each direction's list (i.e. deduplicated).
func (g *Graph) Undirected() *Graph {
	es := make([]Edge, 0, 2*g.NumEdges())
	for v := uint32(0); v < g.n; v++ {
		for _, u := range g.OutNeighbors(v) {
			es = append(es, Edge{v, u}, Edge{u, v})
		}
	}
	return FromEdgesDedup(g.n, es)
}

// Validate checks internal invariants: offset monotonicity, neighbour-ID
// bounds, adjacency sortedness and CSR/CSC edge-count agreement. It returns
// a descriptive error for the first violation found, or nil.
func (g *Graph) Validate() error {
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return fmt.Errorf("graph: offsets length mismatch: out=%d in=%d n=%d",
			len(g.outOff), len(g.inOff), g.n)
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.outOff[g.n] != uint64(len(g.outAdj)) {
		return fmt.Errorf("graph: CSR tail offset %d != |outAdj| %d", g.outOff[g.n], len(g.outAdj))
	}
	if g.inOff[g.n] != uint64(len(g.inAdj)) {
		return fmt.Errorf("graph: CSC tail offset %d != |inAdj| %d", g.inOff[g.n], len(g.inAdj))
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: CSR/CSC edge counts differ: %d vs %d", len(g.outAdj), len(g.inAdj))
	}
	for v := uint32(0); v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] {
			return fmt.Errorf("graph: CSR offsets not monotone at %d", v)
		}
		if g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: CSC offsets not monotone at %d", v)
		}
		if err := checkAdj(g.OutNeighbors(v), g.n, v, "out"); err != nil {
			return err
		}
		if err := checkAdj(g.InNeighbors(v), g.n, v, "in"); err != nil {
			return err
		}
	}
	return nil
}

func checkAdj(adj []uint32, n, v uint32, dir string) error {
	for i, u := range adj {
		if u >= n {
			return fmt.Errorf("graph: %s-neighbour %d of %d out of range (n=%d)", dir, u, v, n)
		}
		if i > 0 && adj[i-1] > u {
			return fmt.Errorf("graph: %s-adjacency of %d not sorted", dir, v)
		}
	}
	return nil
}

// Equal reports whether g and h have identical vertex counts and identical
// (sorted) adjacency structure.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.NumEdges() != h.NumEdges() {
		return false
	}
	for v := uint32(0); v < g.n; v++ {
		a, b := g.OutNeighbors(v), h.OutNeighbors(v)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// TopologyBytes returns the memory footprint in bytes of one direction of
// topology data (offsets at 8 B + edges at 4 B), as defined in §II-A.
func (g *Graph) TopologyBytes() uint64 {
	return uint64(len(g.outOff))*8 + uint64(len(g.outAdj))*4
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{|V|=%d, |E|=%d, avgdeg=%.2f}", g.n, g.NumEdges(), g.AverageDegree())
}
