package graph

// Topology abstraction. The trace generators and the simulators built on
// them never need a fully materialized CSR/CSC — they consume adjacency
// rows in ascending vertex order, one contiguous run at a time. Topology
// captures exactly that access pattern, so the same batched simulation
// pipeline runs over an in-RAM *Graph (one zero-copy span) or an
// out-of-core *SegGraph (one decoded span per on-disk segment) without
// either representation knowing about the other.

// Dims is the minimal size view of a graph representation: enough to
// build an address layout and scale a cache geometry.
type Dims interface {
	NumVertices() uint32
	NumEdges() uint64
}

// RowCursor streams the adjacency rows of a vertex range as contiguous
// decoded spans. Each Next call returns the next span: base is the first
// vertex covered, off holds the *absolute* CSR/CSC offsets of vertices
// [base, base+len(off)-1) (len(off) = span vertices + 1), and adj holds
// the span's neighbour IDs with adj[0] at absolute edge index off[0].
// Spans are contiguous and ascending: the first span starts at the
// cursor's lo, each next span starts where the previous ended, and the
// last ends at hi. Returned slices are valid until the next Next call at
// the earliest representation-defined eviction; callers must not modify
// them.
type RowCursor interface {
	Next() (base uint32, off []uint64, adj []uint32, ok bool)
}

// Topology is the representation-independent graph view the batched
// trace generators consume: sizes, row streaming in either direction,
// and the edge-balanced partitioning parallel traversals use. Both
// *Graph and *SegGraph implement it.
type Topology interface {
	Dims
	// Rows returns a cursor over the CSR (in=false, out-edges) or CSC
	// (in=true, in-edges) rows of vertices [lo, hi).
	Rows(in bool, lo, hi uint32) RowCursor
	// PartitionEdgeBalanced splits [0, |V|) into at most p contiguous
	// ranges of approximately equal edge counts in the chosen direction,
	// with identical boundaries across implementations (the emulated-
	// parallel interleaved stream depends on them).
	PartitionEdgeBalanced(in bool, p int) []Range
}

// sliceCursor is the in-RAM cursor: the whole range as one zero-copy
// span over the graph's arrays.
type sliceCursor struct {
	base uint32
	off  []uint64
	adj  []uint32
	done bool
}

func (c *sliceCursor) Next() (uint32, []uint64, []uint32, bool) {
	if c.done || len(c.off) < 2 {
		return 0, nil, nil, false
	}
	c.done = true
	return c.base, c.off, c.adj, true
}

// Rows implements Topology: the in-RAM graph serves any vertex range as
// a single span aliasing its CSR/CSC arrays.
func (g *Graph) Rows(in bool, lo, hi uint32) RowCursor {
	if hi > g.n {
		hi = g.n
	}
	if lo >= hi {
		return &sliceCursor{done: true}
	}
	off, adj := g.outOff, g.outAdj
	if in {
		off, adj = g.inOff, g.inAdj
	}
	return &sliceCursor{
		base: lo,
		off:  off[lo : hi+1],
		adj:  adj[off[lo]:off[hi]],
	}
}

// PartitionEdgeBalanced implements Topology, dispatching to the
// direction-specific partitioners.
func (g *Graph) PartitionEdgeBalanced(in bool, p int) []Range {
	if in {
		return g.PartitionEdgeBalancedIn(p)
	}
	return g.PartitionEdgeBalancedOut(p)
}
