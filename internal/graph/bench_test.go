package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n uint32, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n)))}
	}
	return FromEdges(n, edges)
}

func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const n, m = 1 << 16, 1 << 19
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
	b.ReportMetric(float64(m), "edges")
}

func BenchmarkRelabel(b *testing.B) {
	g := benchGraph(b, 1<<16, 1<<19)
	perm := Identity(g.NumVertices())
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Relabel(perm)
	}
}

func BenchmarkUndirected(b *testing.B) {
	g := benchGraph(b, 1<<15, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Undirected()
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 1<<16, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 1<<14, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(uint32(i)%g.NumVertices(), uint32(i*7)%g.NumVertices())
	}
}
