package perf

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"graphlocality/internal/cachesim"
	"graphlocality/internal/core"
	"graphlocality/internal/gen"
	"graphlocality/internal/graph"
	"graphlocality/internal/trace"
)

// Workload is one macro-benchmark input: a graph plus the simulation
// options to run over it. The CLI builds workloads from the experiment
// dataset suite; keeping the type here leaves perf independent of expt.
type Workload struct {
	Name  string
	Graph *graph.Graph
	Opts  core.SimOptions
}

// Options tunes a Pipeline run.
type Options struct {
	// Repeats is the number of timing repetitions per benchmark; NsPerOp is
	// their minimum (default 3). The first repetition doubles as warmup —
	// the minimum absorbs its cold-cache cost.
	Repeats int
	// Suite labels the report (e.g. "standard").
	Suite string
	// Progress, when non-nil, receives one line per finished benchmark.
	Progress func(name string, nsPerOp float64)
}

func (o *Options) repeats() int {
	if o.Repeats < 1 {
		return 3
	}
	return o.Repeats
}

func (o *Options) progress(name string, ns float64) {
	if o.Progress != nil {
		o.Progress(name, ns)
	}
}

// timeIt runs f `repeats` times and returns the minimum wall-clock
// duration — the standard least-noise estimator for a deterministic
// workload on a shared machine.
func timeIt(repeats int, f func()) time.Duration {
	var best time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// Pipeline runs the full benchmark suite — micro (cachesim, trace) and
// macro (batched vs scalar SimulateSpMV over the given workloads) — and
// returns the report. The macro pass also cross-checks that the batched
// and scalar results are identical, so a bench run doubles as a coarse
// differential test; a mismatch is returned as an error.
func Pipeline(workloads []Workload, opts Options) (Report, error) {
	r := Report{Schema: SchemaVersion, Suite: opts.Suite, GoMaxProcs: runtime.GOMAXPROCS(0)}
	Micro(&r, opts)
	if err := Macro(&r, workloads, opts); err != nil {
		return r, err
	}
	return r, nil
}

// microAccesses is the synthetic stream length for the cachesim micro
// benchmarks — long enough that per-call fixed costs vanish against the
// per-access work being measured.
const microAccesses = 1 << 20

// Micro appends the microbenchmarks: raw cache-simulator throughput
// (scalar Access vs AccessBatch over the same synthetic stream) and raw
// trace generation (per-access Run vs block RunBatched over the same
// graph). NsPerOp is nanoseconds per simulated access in all four.
func Micro(r *Report, opts Options) {
	rep := opts.repeats()

	// A power-law-skewed synthetic address stream: mostly-random lines over
	// a footprint ~8x the cache, with a hot subset, so both the hit and the
	// miss/eviction paths are exercised. Deterministic LCG; no time source.
	cfg := cachesim.Config{Name: "L3", LineSize: 64, Sets: 1 << 12, Ways: 8, Policy: cachesim.DRRIP}
	footprint := uint64(cfg.SizeBytes()) * 8
	addrs := make([]uint64, microAccesses)
	writes := make([]bool, microAccesses)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range addrs {
		state = state*6364136223846793005 + 1442695040888963407
		a := state % footprint
		if state>>62 == 0 { // ~25% of accesses hit a small hot region
			a = state % (footprint / 64)
		}
		addrs[i] = a
		writes[i] = state>>61&1 == 0
	}

	scalar := timeIt(rep, func() {
		c := cachesim.New(cfg)
		for i, a := range addrs {
			c.Access(a, writes[i])
		}
	})
	name := "cachesim/access/scalar"
	ns := float64(scalar.Nanoseconds()) / microAccesses
	r.Add(name, rep, ns)
	opts.progress(name, ns)

	batched := timeIt(rep, func() {
		c := cachesim.New(cfg)
		for lo := 0; lo < len(addrs); lo += trace.DefaultBatchSize {
			hi := lo + trace.DefaultBatchSize
			if hi > len(addrs) {
				hi = len(addrs)
			}
			c.AccessBatch(addrs[lo:hi], writes[lo:hi], nil)
		}
	})
	name = "cachesim/access/batched"
	ns = float64(batched.Nanoseconds()) / microAccesses
	r.Add(name, rep, ns)
	opts.progress(name, ns)
	r.AddSpeedup("cachesim/access", float64(scalar.Nanoseconds())/float64(batched.Nanoseconds()))

	// Trace generation over a small social graph (deterministic).
	g := gen.SocialNetwork(12, 12, 42)
	layout := trace.NewLayout(g)
	total := float64(trace.CountAccesses(g))
	var sinkAddr uint64

	tScalar := timeIt(rep, func() {
		trace.Run(g, layout, trace.Pull, func(a trace.Access) { sinkAddr += a.Addr })
	})
	name = "trace/run/scalar"
	ns = float64(tScalar.Nanoseconds()) / total
	r.Add(name, rep, ns)
	opts.progress(name, ns)

	tBatched := timeIt(rep, func() {
		trace.RunBatched(g, layout, trace.Pull, 0, func(block []trace.Access) bool {
			for _, a := range block {
				sinkAddr += a.Addr
			}
			return true
		})
	})
	name = "trace/run/batched"
	ns = float64(tBatched.Nanoseconds()) / total
	r.Add(name, rep, ns)
	opts.progress(name, ns)
	r.AddSpeedup("trace/run", float64(tScalar.Nanoseconds())/float64(tBatched.Nanoseconds()))
	_ = sinkAddr
}

// Macro appends, per workload, the scalar-reference and batched
// SimulateSpMV timings and their speedup — the headline number the bench
// gate protects. It errors if the two paths disagree on any workload (the
// bit-exactness contract, checked on the run's own output).
func Macro(r *Report, workloads []Workload, opts Options) error {
	rep := opts.repeats()
	var totalScalar, totalBatched float64
	for _, w := range workloads {
		var scalarRes, batchedRes core.SimResult
		scalar := timeIt(rep, func() { scalarRes = core.SimulateSpMVReference(w.Graph, w.Opts) })
		name := "simulate/scalar/" + w.Name
		ns := float64(scalar.Nanoseconds())
		r.Add(name, rep, ns)
		opts.progress(name, ns)

		batched := timeIt(rep, func() { batchedRes = core.SimulateSpMV(w.Graph, w.Opts) })
		name = "simulate/batched/" + w.Name
		ns = float64(batched.Nanoseconds())
		r.Add(name, rep, ns)
		opts.progress(name, ns)

		if !reflect.DeepEqual(scalarRes, batchedRes) {
			return fmt.Errorf("perf: batched and scalar SimulateSpMV disagree on %s", w.Name)
		}
		r.AddSpeedup("simulate/"+w.Name, float64(scalar.Nanoseconds())/float64(batched.Nanoseconds()))
		totalScalar += float64(scalar.Nanoseconds())
		totalBatched += float64(batched.Nanoseconds())
	}
	// The headline number: the whole-grid wall-time ratio. Less noisy than
	// any per-dataset ratio (noise on one workload is diluted by the sum),
	// so it is the most stable speedup for the bench gate to protect.
	if totalBatched > 0 {
		r.AddSpeedup("simulate/overall", totalScalar/totalBatched)
	}
	return nil
}
