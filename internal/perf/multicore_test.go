package perf

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"graphlocality/internal/gen"
)

// TestMulticorePass runs the multicore sweep on a tiny workload and checks
// the report shape: one timing row per (kind, workload, worker count), one
// speedup row per worker count above 1, and GOMAXPROCS restored afterward.
// The pass's built-in DeepEqual cross-checks make a passing run a
// bit-exactness statement too; a divergence would surface as an error here.
func TestMulticorePass(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	workloads := []Workload{{Name: "tiny", Graph: gen.SocialNetwork(9, 8, 3)}}
	counts := []int{1, 2, 4}
	r := Report{Schema: SchemaVersion, Suite: "test"}
	if err := Multicore(&r, workloads, counts, Options{Repeats: 1}); err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != before {
		t.Errorf("GOMAXPROCS = %d after pass, want %d restored", got, before)
	}
	for _, kind := range []string{"simulate", "boba"} {
		for _, wc := range counts {
			name := fmt.Sprintf("multicore/%s/tiny/w=%d", kind, wc)
			if _, ok := r.Find(name); !ok {
				t.Errorf("missing benchmark %s", name)
			}
			_, hasSpeedup := r.FindSpeedup(name)
			if wantSpeedup := wc > 1; hasSpeedup != wantSpeedup {
				t.Errorf("speedup entry for %s: present=%v, want %v", name, hasSpeedup, wantSpeedup)
			}
		}
	}
	for _, s := range r.Speedups {
		if s.Speedup <= 0 {
			t.Errorf("speedup %s = %v, want > 0", s.Name, s.Speedup)
		}
	}
}

// TestMulticoreDefaultsWorkerLadder pins the ladder contract: it starts at
// 1 (the baseline every speedup is relative to) and always includes 2, so
// the parallel pipeline runs even on a single-core machine; and a caller
// list not starting at 1 gets the baseline prepended.
func TestMulticoreDefaultsWorkerLadder(t *testing.T) {
	counts := DefaultWorkerCounts()
	if len(counts) < 2 || counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("DefaultWorkerCounts() = %v, want to start 1,2", counts)
	}
	workloads := []Workload{{Name: "t", Graph: gen.ErdosRenyi(200, 1000, 1)}}
	r := Report{Schema: SchemaVersion}
	if err := Multicore(&r, workloads, []int{2}, Options{Repeats: 1}); err != nil {
		t.Fatal(err)
	}
	var haveBase bool
	for _, b := range r.Benchmarks {
		if strings.HasSuffix(b.Name, "/w=1") {
			haveBase = true
		}
	}
	if !haveBase {
		t.Error("worker list without 1 did not get the w=1 baseline prepended")
	}
}
