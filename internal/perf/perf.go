// Package perf is the benchmark-regression harness: it times the
// simulation stack's hot paths (micro: cachesim and trace; macro: full
// SimulateSpMV runs over experiment-grid workloads), serializes the
// measurements as a JSON report, and diffs two reports with a tolerance so
// CI can fail on a performance regression. The macro pass times the batched
// fast path against the scalar reference and records their speedups — the
// diff guards those against erosion as well, because a "faster baseline"
// regression (the batched path silently degrading to scalar performance)
// does not show up in wall-clock noise gates alone.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion identifies the report layout; Diff refuses to compare
// reports with mismatched schemas.
const SchemaVersion = 1

// Benchmark is one timed workload.
type Benchmark struct {
	Name string `json:"name"`
	// Iters is the number of timing repetitions taken (NsPerOp is their
	// minimum — the least-noise estimator on a shared machine).
	Iters int `json:"iters"`
	// NsPerOp is the best-case wall-clock nanoseconds for one operation.
	NsPerOp float64 `json:"ns_per_op"`
}

// SpeedupEntry records a derived batched-vs-scalar ratio for one workload.
// Ratios are far more stable across machines than absolute times, so the
// regression gate holds them to the same tolerance as a cross-machine
// comparison of NsPerOp would fail spuriously.
type SpeedupEntry struct {
	Name string `json:"name"`
	// Speedup is scalar time / batched time; > 1 means the fast path wins.
	Speedup float64 `json:"speedup"`
}

// Report is one serialized benchmark run.
type Report struct {
	Schema     int            `json:"schema"`
	Suite      string         `json:"suite"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Benchmarks []Benchmark    `json:"benchmarks"`
	Speedups   []SpeedupEntry `json:"speedups,omitempty"`
}

// Add appends a benchmark measurement.
func (r *Report) Add(name string, iters int, nsPerOp float64) {
	r.Benchmarks = append(r.Benchmarks, Benchmark{Name: name, Iters: iters, NsPerOp: nsPerOp})
}

// AddSpeedup appends a derived speedup entry.
func (r *Report) AddSpeedup(name string, speedup float64) {
	r.Speedups = append(r.Speedups, SpeedupEntry{Name: name, Speedup: speedup})
}

// Find returns the named benchmark.
func (r *Report) Find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// FindSpeedup returns the named speedup entry.
func (r *Report) FindSpeedup(name string) (SpeedupEntry, bool) {
	for _, s := range r.Speedups {
		if s.Name == name {
			return s, true
		}
	}
	return SpeedupEntry{}, false
}

// MinSpeedup returns the smallest recorded speedup (0 when none).
func (r *Report) MinSpeedup() float64 {
	min := 0.0
	for i, s := range r.Speedups {
		if i == 0 || s.Speedup < min {
			min = s.Speedup
		}
	}
	return min
}

// WriteFile atomically-enough writes the report as indented JSON (write is
// a single O_TRUNC create; bench artifacts are regenerated, not recovered).
func WriteFile(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return r, nil
}

// RegressionKind classifies what a Diff finding violated.
type RegressionKind string

const (
	// TimeRegression: a benchmark's NsPerOp grew beyond tolerance.
	TimeRegression RegressionKind = "time"
	// SpeedupErosion: a recorded batched-vs-scalar speedup shrank beyond
	// tolerance.
	SpeedupErosion RegressionKind = "speedup"
	// MissingBenchmark: a baseline measurement disappeared from the
	// current report — dropped coverage must not pass the gate silently.
	MissingBenchmark RegressionKind = "missing"
)

// Regression is one tolerance violation found by Diff.
type Regression struct {
	Kind RegressionKind `json:"kind"`
	Name string         `json:"name"`
	Old  float64        `json:"old"`
	New  float64        `json:"new"`
	// Ratio is new/old for time (bigger = worse) and old/new for speedups
	// (bigger = worse), so any Ratio > tolerance reads as a violation.
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	switch r.Kind {
	case TimeRegression:
		return fmt.Sprintf("time regression %s: %.0f ns/op -> %.0f ns/op (%.2fx > tolerance)",
			r.Name, r.Old, r.New, r.Ratio)
	case SpeedupErosion:
		return fmt.Sprintf("speedup erosion %s: %.2fx -> %.2fx (%.2fx shrink > tolerance)",
			r.Name, r.Old, r.New, r.Ratio)
	default:
		return fmt.Sprintf("benchmark %s present in baseline but missing from current report", r.Name)
	}
}

// Diff compares current against baseline under a multiplicative tolerance
// (e.g. 1.5 = current may be up to 1.5x slower before it counts as a
// regression; must be >= 1). It returns the violations sorted worst-first;
// an empty slice means the gate passes. Benchmarks present only in current
// are new coverage and never violations.
func Diff(baseline, current Report, tolerance float64) ([]Regression, error) {
	if tolerance < 1 {
		return nil, fmt.Errorf("perf: tolerance %.2f must be >= 1", tolerance)
	}
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("perf: schema mismatch: baseline v%d vs current v%d",
			baseline.Schema, current.Schema)
	}
	var out []Regression
	for _, b := range baseline.Benchmarks {
		cur, ok := current.Find(b.Name)
		if !ok {
			out = append(out, Regression{Kind: MissingBenchmark, Name: b.Name, Old: b.NsPerOp})
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		if ratio > tolerance {
			out = append(out, Regression{Kind: TimeRegression, Name: b.Name,
				Old: b.NsPerOp, New: cur.NsPerOp, Ratio: ratio})
		}
	}
	for _, s := range baseline.Speedups {
		cur, ok := current.FindSpeedup(s.Name)
		if !ok {
			out = append(out, Regression{Kind: MissingBenchmark, Name: s.Name, Old: s.Speedup})
			continue
		}
		if cur.Speedup <= 0 {
			continue
		}
		ratio := s.Speedup / cur.Speedup
		if ratio > tolerance {
			out = append(out, Regression{Kind: SpeedupErosion, Name: s.Name,
				Old: s.Speedup, New: cur.Speedup, Ratio: ratio})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			// Missing benchmarks (Ratio 0) sort after real slowdowns.
			return out[i].Kind != MissingBenchmark && out[j].Kind == MissingBenchmark
		}
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}
