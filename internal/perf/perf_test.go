package perf

import (
	"path/filepath"
	"reflect"
	"testing"
)

func baselineReport() Report {
	r := Report{Schema: SchemaVersion, Suite: "test", GoMaxProcs: 1}
	r.Add("micro/a", 3, 100)
	r.Add("macro/b", 3, 1e6)
	r.AddSpeedup("macro/b", 2.0)
	return r
}

func TestDiffPasses(t *testing.T) {
	base := baselineReport()

	// Identical reports pass.
	if regs, err := Diff(base, base, 1.5); err != nil || len(regs) != 0 {
		t.Fatalf("self-diff: regs=%v err=%v", regs, err)
	}

	// Slowdown and erosion inside the tolerance pass.
	cur := baselineReport()
	cur.Benchmarks[0].NsPerOp = 140
	cur.Speedups[0].Speedup = 1.5
	if regs, err := Diff(base, cur, 1.5); err != nil || len(regs) != 0 {
		t.Fatalf("within tolerance: regs=%v err=%v", regs, err)
	}

	// Benchmarks only in current are new coverage, never violations.
	cur = baselineReport()
	cur.Add("micro/new", 3, 5)
	cur.AddSpeedup("macro/new", 3.0)
	if regs, err := Diff(base, cur, 1.5); err != nil || len(regs) != 0 {
		t.Fatalf("new coverage: regs=%v err=%v", regs, err)
	}
}

func TestDiffCatchesRegressions(t *testing.T) {
	base := baselineReport()

	// Time regression beyond tolerance.
	cur := baselineReport()
	cur.Benchmarks[0].NsPerOp = 200
	regs, err := Diff(base, cur, 1.5)
	if err != nil || len(regs) != 1 {
		t.Fatalf("time regression: regs=%v err=%v", regs, err)
	}
	if regs[0].Kind != TimeRegression || regs[0].Name != "micro/a" || regs[0].Ratio != 2.0 {
		t.Fatalf("time regression: %+v", regs[0])
	}

	// Speedup erosion: the batched path silently losing its advantage.
	cur = baselineReport()
	cur.Speedups[0].Speedup = 1.0
	regs, err = Diff(base, cur, 1.5)
	if err != nil || len(regs) != 1 {
		t.Fatalf("speedup erosion: regs=%v err=%v", regs, err)
	}
	if regs[0].Kind != SpeedupErosion || regs[0].Ratio != 2.0 {
		t.Fatalf("speedup erosion: %+v", regs[0])
	}

	// Dropped coverage must not pass silently.
	cur = Report{Schema: SchemaVersion}
	cur.Add("micro/a", 3, 100)
	regs, err = Diff(base, cur, 1.5)
	if err != nil || len(regs) != 2 {
		t.Fatalf("missing benchmarks: regs=%v err=%v", regs, err)
	}
	for _, r := range regs {
		if r.Kind != MissingBenchmark {
			t.Fatalf("missing benchmarks: %+v", r)
		}
	}
}

func TestDiffWorstFirst(t *testing.T) {
	base := Report{Schema: SchemaVersion}
	base.Add("mild", 1, 100)
	base.Add("severe", 1, 100)
	base.Add("gone", 1, 100)
	cur := Report{Schema: SchemaVersion}
	cur.Add("mild", 1, 200)
	cur.Add("severe", 1, 400)
	regs, err := Diff(base, cur, 1.5)
	if err != nil || len(regs) != 3 {
		t.Fatalf("regs=%v err=%v", regs, err)
	}
	if regs[0].Name != "severe" || regs[1].Name != "mild" || regs[2].Name != "gone" {
		t.Fatalf("order: %v", regs)
	}
}

func TestDiffRejectsBadInputs(t *testing.T) {
	base := baselineReport()
	if _, err := Diff(base, base, 0.9); err == nil {
		t.Fatal("tolerance < 1 accepted")
	}
	cur := baselineReport()
	cur.Schema = SchemaVersion + 1
	if _, err := Diff(base, cur, 1.5); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := baselineReport()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if got.MinSpeedup() != 2.0 {
		t.Fatalf("MinSpeedup = %v, want 2.0", got.MinSpeedup())
	}
}
