package perf

import (
	"fmt"
	"reflect"
	"runtime"

	"graphlocality/internal/core"
	"graphlocality/internal/graph"
	"graphlocality/internal/reorder"
)

// DefaultWorkerCounts returns the worker-count ladder for a multicore
// bench run on this machine: 1, then doubling up to NumCPU. It always
// includes 2 even on a single-core machine — GOMAXPROCS can be raised past
// the core count, so the parallel pipeline still runs (and is still
// bit-exactness-checked); only the speedups become ~1x there, which the
// report records honestly via its GoMaxProcs field.
func DefaultWorkerCounts() []int {
	counts := []int{1, 2}
	for w := 4; w <= runtime.NumCPU(); w *= 2 {
		counts = append(counts, w)
	}
	return counts
}

// Multicore appends the multicore-scaling pass: per workload and worker
// count w, SimulateSpMV with Workers=w is timed under GOMAXPROCS(w) and
// DeepEqual-checked against the scalar reference — every timing row
// doubles as a bit-exactness proof, so a scaling number can never be
// bought with a wrong result. A second sweep does the same for the boba
// parallel ordering against its serial pass. Speedup entries record
// t(w=1)/t(w) per row ("multicore/..."), the numbers the bench diff gate
// guards against scaling erosion.
func Multicore(r *Report, workloads []Workload, workerCounts []int, opts Options) error {
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts()
	}
	if workerCounts[0] != 1 {
		workerCounts = append([]int{1}, workerCounts...)
	}
	rep := opts.repeats()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, w := range workloads {
		ref := core.SimulateSpMVReference(w.Graph, w.Opts)
		var base float64
		for _, wc := range workerCounts {
			runtime.GOMAXPROCS(wc)
			o := w.Opts
			o.Workers = wc
			var res core.SimResult
			d := timeIt(rep, func() { res = core.SimulateSpMV(w.Graph, o) })
			if !reflect.DeepEqual(ref, res) {
				return fmt.Errorf("perf: multicore SimulateSpMV (workers=%d) diverges from reference on %s", wc, w.Name)
			}
			name := fmt.Sprintf("multicore/simulate/%s/w=%d", w.Name, wc)
			ns := float64(d.Nanoseconds())
			r.Add(name, rep, ns)
			opts.progress(name, ns)
			if wc == 1 {
				base = ns
			} else if ns > 0 {
				r.AddSpeedup(name, base/ns)
			}
		}
	}

	for _, w := range workloads {
		runtime.GOMAXPROCS(prev)
		serial := reorder.Boba{Workers: 1}.Relabel(w.Graph)
		var base float64
		for _, wc := range workerCounts {
			runtime.GOMAXPROCS(wc)
			var perm graph.Permutation
			d := timeIt(rep, func() { perm = reorder.Boba{Workers: wc}.Relabel(w.Graph) })
			if !reflect.DeepEqual(serial, perm) {
				return fmt.Errorf("perf: boba workers=%d diverges from serial on %s", wc, w.Name)
			}
			name := fmt.Sprintf("multicore/boba/%s/w=%d", w.Name, wc)
			ns := float64(d.Nanoseconds())
			r.Add(name, rep, ns)
			opts.progress(name, ns)
			if wc == 1 {
				base = ns
			} else if ns > 0 {
				r.AddSpeedup(name, base/ns)
			}
		}
	}
	return nil
}
