package cachesim

// Batched access fast paths. A trace-driven simulation spends most of its
// time calling Cache.Access once per memory instruction; for a full SpMV
// grid that is hundreds of millions of calls whose cost is dominated by Go
// call overhead and per-access bookkeeping rather than by the replacement
// policy itself. AccessBatch amortizes that overhead over a block of
// accesses: geometry (line shift, set mask, tag shift) and policy state
// (PSEL, BRRIP counter, LRU clock) are hoisted out of the loop, the probe
// and the whole miss path run inline over local slice headers with no
// method calls, and the counters are folded into Stats once per block.
//
// Bit-exactness contract: for any access sequence, any way of cutting it
// into batches produces exactly the per-access hit/miss results and final
// cache state (tags, dirty bits, replacement metadata, DRRIP PSEL, BRRIP
// counter, statistics) that the same sequence produces through scalar
// Access calls. The inlined miss path below mirrors missFill/victim/insert
// operation for operation; the differential suite in core and
// FuzzBatchedVsScalar hold the two implementations together.

// bmax is a branchless max for values below 2^63: the sign of a-b selects
// between the operands with a mask instead of a data-dependent branch.
func bmax(a, b uint64) uint64 {
	return a ^ ((a ^ b) & uint64((int64(a)-int64(b))>>63))
}

// AccessBatch simulates len(addrs) accesses in order. writes marks which
// accesses are stores; nil means all loads. hits, when non-nil, must have
// len(addrs) elements and receives the per-access hit results. It returns
// the number of hits in the batch.
func (c *Cache) AccessBatch(addrs []uint64, writes, hits []bool) int {
	// A real tag is addr >> (lineBits+setBits), so it spans fewer than 64
	// bits — and can never equal invalidTag — whenever the geometry shifts
	// by at least one bit. The degenerate 1-byte-line, single-set cache
	// (test-only) falls back to the scalar path, whose probe uses the valid
	// bits; the per-access order of state and stats updates is the same, so
	// results are still bit-identical.
	if c.lineBits+c.setBits == 0 {
		n := 0
		for i, addr := range addrs {
			hit := c.Access(addr, writes != nil && writes[i])
			if hits != nil {
				hits[i] = hit
			}
			if hit {
				n++
			}
		}
		return n
	}
	lineBits, setMask, setBits := c.lineBits, c.setMask, c.setBits
	ways := c.cfg.Ways
	tags, valid, dirty, meta, occ := c.tags, c.valid, c.dirty, c.meta, c.occ
	policy := c.cfg.Policy
	isLRU := policy == LRU
	isDRRIP := policy == DRRIP
	nextLine := c.cfg.NextLinePrefetch
	// Policy state as loop locals, written back after the block. prefetch()
	// (the only method still called, on the rare prefetch-fill path) does
	// not read any of these, so the copies cannot go stale mid-block.
	psel, clock, brripCtr := c.psel, c.clock, c.brripCtr

	// Two-slot MRU line memo. The SpMV stream is highly line-repetitive in
	// an alternating pattern — 16 sequential edge reads per line interleaved
	// with random vertex-data reads, and offsets pairs on a shared line — so
	// remembering the last two distinct (line, way) residencies lets most
	// accesses skip the associative probe with a single tag compare. The
	// memo is only a probe shortcut: a stale entry (way since reclaimed by
	// another line) fails the tag compare and falls through to the full
	// probe, so state evolution is untouched.
	memoLine0, memoWay0 := ^uint64(0), 0
	memoLine1, memoWay1 := ^uint64(0), 0

	nHits := 0
	var readMiss, writeMiss, evictions, writebacks uint64
	for i, addr := range addrs {
		write := writes != nil && writes[i]
		line := addr >> lineBits
		tag := line >> setBits

		hitWay := -1
		// The sentinel makes the valid-bit check redundant here too: a
		// reclaimed way holds some other tag (or invalidTag), so the tag
		// compare alone rejects stale memo entries.
		if line == memoLine0 {
			if j := memoWay0; tags[j] == tag {
				hitWay = j
			}
		} else if line == memoLine1 {
			if j := memoWay1; tags[j] == tag {
				hitWay = j
			}
		}
		if hitWay < 0 {
			set := line & setMask
			base := int(set) * ways
			// Tag-only probe: invalid ways hold invalidTag, which no real
			// tag equals here, so the valid-bit load and branch drop out of
			// the inner loop. Fills always claim the lowest-index invalid
			// way, so valid ways form a prefix of the set: the first
			// sentinel both proves the miss and is the victim way.
			row := tags[base : base+ways]
			victim := -1
			for w, t := range row {
				if t == tag {
					hitWay = base + w
					break
				}
				if t == invalidTag {
					victim = w
					break
				}
			}
			if hitWay < 0 {
				// Inlined miss path — the same operations missFill performs,
				// in the same order, over the hoisted state.
				if hits != nil {
					hits[i] = false
				}
				if write {
					writeMiss++
				} else {
					readMiss++
				}
				if isDRRIP {
					// Leader-set misses steer PSEL (leaderPeriod is a power
					// of two, so &(leaderPeriod-1) matches missFill's %).
					// Branchless: whether a random set is a leader is
					// unpredictable, so the increment/decrement and their
					// clamps are computed as 0/1 masks instead of branches.
					lead := set & (leaderPeriod - 1)
					isS := int((lead - 1) >> 63)                    // 1 iff lead == 0
					isB := int(((lead ^ 1) - 1) >> 63)              // 1 iff lead == 1
					canUp := int(uint64(int64(psel-pselMax)) >> 63) // 1 iff psel < pselMax
					canDn := int(uint64(int64(-psel)) >> 63)        // 1 iff psel > 0
					psel += isS*canUp - isB*canDn
				}
				// Victim selection (victim()): the invalid way the probe
				// stopped at, else per policy. occ stays in lockstep for the
				// scalar path's victim().
				metaRow := meta[base : base+ways]
				if victim >= 0 {
					occ[set]++
				} else {
					if isLRU {
						victim = 0
						for w := 1; w < ways; w++ {
							if metaRow[w] < metaRow[victim] {
								victim = w
							}
						}
					} else if ways == 8 {
						// RRIP single-scan age-and-evict (see victim()),
						// branchless: RRPVs are 2-bit, so (rrpv<<4 | 15-way)
						// packs into one comparable key whose maximum is the
						// highest RRPV at the lowest way — the argmax position
						// is data-dependent noise the branch predictor pays
						// ~2 mispredicts per miss to chase. The masked-select
						// maxes reduce as a tree (depth 3, not a 7-long
						// dependency chain), and the aging add runs
						// unconditionally since adding 0 is the identity.
						r := metaRow[:8:8]
						best := bmax(
							bmax(bmax(r[0]<<4|15, r[1]<<4|14), bmax(r[2]<<4|13, r[3]<<4|12)),
							bmax(bmax(r[4]<<4|11, r[5]<<4|10), bmax(r[6]<<4|9, r[7]<<4|8)))
						victim = 15 - int(best&15)
						d := rrpvMax - best>>4
						r[0] += d
						r[1] += d
						r[2] += d
						r[3] += d
						r[4] += d
						r[5] += d
						r[6] += d
						r[7] += d
					} else if ways <= 16 {
						best := metaRow[0]<<4 | 15
						for w := 1; w < ways; w++ {
							best = bmax(best, metaRow[w]<<4|uint64(15-w))
						}
						victim = 15 - int(best&15)
						d := rrpvMax - best>>4
						for w := range metaRow {
							metaRow[w] += d
						}
					} else {
						max := metaRow[0]
						victim = 0
						for w := 1; w < ways; w++ {
							if metaRow[w] > max {
								victim, max = w, metaRow[w]
							}
						}
						if d := rrpvMax - max; d != 0 {
							for w := range metaRow {
								metaRow[w] += d
							}
						}
					}
					evictions++
					if dirty[base+victim] {
						writebacks++
					}
				}
				// Fill.
				valid[base+victim] = true
				row[victim] = tag
				dirty[base+victim] = write
				// Insertion (insert()/setRole()).
				role := policy
				if isDRRIP {
					switch set & (leaderPeriod - 1) {
					case 0:
						role = SRRIP
					case 1:
						role = BRRIP
					default:
						if psel >= pselInit {
							role = BRRIP
						} else {
							role = SRRIP
						}
					}
				}
				switch role {
				case LRU:
					clock++
					metaRow[victim] = clock
				case SRRIP:
					metaRow[victim] = rrpvLong
				default: // BRRIP
					brripCtr++
					if brripCtr%brripEpsilon == 0 {
						metaRow[victim] = rrpvLong
					} else {
						metaRow[victim] = rrpvDistant
					}
				}
				if nextLine {
					c.prefetch(line + 1)
				}
				way := base + victim
				if line != memoLine0 {
					memoLine1, memoWay1 = memoLine0, memoWay0
					memoLine0, memoWay0 = line, way
				} else {
					memoWay0 = way
				}
				continue
			}
		}
		if line != memoLine0 {
			memoLine1, memoWay1 = memoLine0, memoWay0
			memoLine0, memoWay0 = line, hitWay
		} else {
			memoWay0 = hitWay
		}
		nHits++
		if isLRU {
			clock++
			meta[hitWay] = clock
		} else { // all RRIP variants promote to RRPV 0 on hit
			meta[hitWay] = 0
		}
		if write {
			dirty[hitWay] = true
		}
		if hits != nil {
			hits[i] = true
		}
	}

	// Write back the hoisted policy state and fold the counters once per
	// block. Prefetch fills account their own stats inside prefetch().
	c.psel, c.clock, c.brripCtr = psel, clock, brripCtr
	c.stats.Accesses += uint64(len(addrs))
	c.stats.Hits += uint64(nHits)
	c.stats.Misses += uint64(len(addrs) - nHits)
	c.stats.ReadMiss += readMiss
	c.stats.WriteMiss += writeMiss
	c.stats.Evictions += evictions
	c.stats.Writebacks += writebacks
	return nHits
}

// AccessBatch looks up a block of address translations in order; hits,
// when non-nil, receives the per-access results. It returns the number of
// TLB hits.
func (t *TLB) AccessBatch(addrs []uint64, hits []bool) int {
	return t.c.AccessBatch(addrs, nil, hits)
}

// AccessBatch walks the hierarchy for a block of accesses. levels, when
// non-nil, must have len(addrs) elements and receives each access's hit
// level (Levels() for a memory access), exactly as scalar Access reports.
//
// The batch is processed level by level with miss compaction: level 0 sees
// the whole block, level 1 only the block's level-0 misses, and so on.
// Because each level's future behaviour depends only on the sequence of
// addresses it observes — and compaction preserves that sequence in order —
// the per-level states and statistics evolve bit-identically to the scalar
// walk that interleaves levels per access.
func (h *Hierarchy) AccessBatch(addrs []uint64, writes []bool, levels []int) {
	n := len(addrs)
	if n == 0 {
		return
	}
	if cap(h.batchHits) < n {
		h.batchHits = make([]bool, n)
		h.missAddrs = make([]uint64, n)
		h.missWrites = make([]bool, n)
		h.missIdx = make([]int, n)
	}

	curAddrs := addrs
	curWrites := writes
	var curIdx []int // nil = identity mapping into the caller's block
	for li, c := range h.levels {
		hits := h.batchHits[:len(curAddrs)]
		c.AccessBatch(curAddrs, curWrites, hits)
		// Compact the misses for the next level. Forward in-place
		// compaction is safe: the write index never passes the read index.
		nm := 0
		for i, hit := range hits {
			orig := i
			if curIdx != nil {
				orig = curIdx[i]
			}
			if hit {
				if levels != nil {
					levels[orig] = li
				}
				continue
			}
			h.missAddrs[nm] = curAddrs[i]
			if curWrites != nil {
				h.missWrites[nm] = curWrites[i]
			}
			h.missIdx[nm] = orig
			nm++
		}
		if nm == 0 {
			return
		}
		curAddrs = h.missAddrs[:nm]
		if curWrites != nil {
			curWrites = h.missWrites[:nm]
		}
		curIdx = h.missIdx[:nm]
	}
	if levels != nil {
		for _, orig := range curIdx {
			levels[orig] = len(h.levels)
		}
	}
}
