// Package cachesim implements the trace-based cache simulator the paper
// builds its locality analysis on (§V-B): a set-associative cache in the
// style of SimpleScalar's sim-cache, equipped with an accurate
// implementation of the SRRIP and BRRIP replacement policies and their
// set-dueling combination DRRIP (Jaleel et al., ISCA'10), which the paper
// uses to model the shared L3 of a Skylake-SP NUMA node.
//
// The simulator is functional (timing-less): each access returns hit/miss
// and updates replacement state. Cache contents can be snapshotted at any
// point, which the Effective Cache Size metric (§VI-F) relies on.
package cachesim

import (
	"fmt"
	"math/bits"

	"graphlocality/internal/obs"
)

// Policy selects the replacement policy of a Cache.
type Policy int

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// SRRIP is Static Re-Reference Interval Prediction with 2-bit RRPV:
	// insertion at RRPV=2 ("long"), promotion to 0 on hit.
	SRRIP
	// BRRIP is Bimodal RRIP: insertion at RRPV=3 ("distant") except with
	// probability 1/32 at RRPV=2, making the cache scan- and
	// thrash-resistant.
	BRRIP
	// DRRIP duels SRRIP and BRRIP on dedicated leader sets and steers the
	// follower sets with a PSEL counter. This is the policy the paper's
	// simulator uses for the L3.
	DRRIP
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case SRRIP:
		return "SRRIP"
	case BRRIP:
		return "BRRIP"
	case DRRIP:
		return "DRRIP"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

const (
	rrpvMax      = 3  // 2-bit RRPV
	rrpvLong     = 2  // SRRIP insertion
	rrpvDistant  = 3  // BRRIP insertion
	brripEpsilon = 32 // BRRIP inserts long once every brripEpsilon misses
	pselMax      = 1023
	pselInit     = 512
	// Leader-set spacing for DRRIP set dueling: within each run of
	// leaderPeriod sets, set 0 is an SRRIP leader and set 1 a BRRIP
	// leader.
	leaderPeriod = 32
)

// invalidTag marks never-filled ways in the tags array, letting the batched
// probe match on the tag alone. A real tag is addr >> (lineBits+setBits),
// so it can only equal invalidTag when lineBits+setBits == 0 — AccessBatch
// falls back to the valid-bit probe for that degenerate geometry.
const invalidTag = ^uint64(0)

// Config describes cache geometry and policy.
type Config struct {
	Name     string // for reporting ("L3", "DTLB", ...)
	LineSize int    // bytes per line; power of two
	Sets     int    // number of sets; power of two
	Ways     int    // associativity
	Policy   Policy
	// NextLinePrefetch enables a simple sequential prefetcher: every
	// demand miss also fills the next line (tagged at distant RRPV /
	// LRU-cold so prefetches do not displace demand data aggressively).
	// This models the §II-D observation that the topology streams of
	// CSR/CSC traversals are served by hardware prefetchers.
	NextLinePrefetch bool
}

// SizeBytes returns the total capacity in bytes.
func (c Config) SizeBytes() int { return c.LineSize * c.Sets * c.Ways }

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.LineSize <= 0 || bits.OnesCount(uint(c.LineSize)) != 1 {
		return fmt.Errorf("cachesim: LineSize %d must be a positive power of two", c.LineSize)
	}
	if c.Sets <= 0 || bits.OnesCount(uint(c.Sets)) != 1 {
		return fmt.Errorf("cachesim: Sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cachesim: Ways %d must be positive", c.Ways)
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	ReadMiss   uint64
	WriteMiss  uint64
	Evictions  uint64
	Writebacks uint64 // evictions of dirty lines
	Prefetches uint64 // lines filled by the next-line prefetcher
}

// MissRate returns Misses/Accesses in [0,1], or 0 when no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Record folds the counters into rec under prefix (e.g. "sim.l3"). The
// simulator's hot path keeps its plain per-instance counters; stages fold
// the totals atomically once per simulation, which keeps manifest totals
// deterministic under the parallel scheduler.
func (s Stats) Record(rec obs.Recorder, prefix string) {
	rec.Counter(prefix + ".accesses").Add(s.Accesses)
	rec.Counter(prefix + ".hits").Add(s.Hits)
	rec.Counter(prefix + ".misses").Add(s.Misses)
	rec.Counter(prefix + ".evictions").Add(s.Evictions)
	rec.Counter(prefix + ".writebacks").Add(s.Writebacks)
	rec.Counter(prefix + ".prefetches").Add(s.Prefetches)
}

// Cache is a set-associative cache simulator. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	lineBits uint
	setBits  uint // log2(Sets); tag = line >> setBits
	setMask  uint64

	// Per-line state, indexed by set*ways+way.
	tags  []uint64
	valid []bool
	dirty []bool
	meta  []uint64 // LRU timestamp or RRPV, per policy

	// occ counts the valid ways per set. Once a set is full (the steady
	// state after warmup) the victim search can skip its scan for an
	// invalid way; the fill paths keep the count in lockstep with valid.
	occ []uint16

	clock    uint64 // LRU timestamp source
	psel     int    // DRRIP policy selector
	brripCtr uint64 // BRRIP bimodal counter

	stats Stats
}

// New constructs a Cache. It panics on invalid geometry (configuration is
// programmer-controlled).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nLines := cfg.Sets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setBits:  uint(bits.TrailingZeros(uint(cfg.Sets))),
		setMask:  uint64(cfg.Sets - 1),
		tags:     make([]uint64, nLines),
		valid:    make([]bool, nLines),
		dirty:    make([]bool, nLines),
		meta:     make([]uint64, nLines),
		occ:      make([]uint16, cfg.Sets),
		psel:     pselInit,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.meta[i] = 0
		c.tags[i] = invalidTag
	}
	for i := range c.occ {
		c.occ[i] = 0
	}
	c.clock = 0
	c.psel = pselInit
	c.brripCtr = 0
	c.stats = Stats{}
}

// set dueling roles for DRRIP.
func (c *Cache) setRole(set uint64) Policy {
	if c.cfg.Policy != DRRIP {
		return c.cfg.Policy
	}
	switch set % leaderPeriod {
	case 0:
		return SRRIP
	case 1:
		return BRRIP
	default:
		if c.psel >= pselInit {
			return BRRIP // SRRIP leaders missed more
		}
		return SRRIP
	}
}

// Access simulates one memory access of any size that fits in a line.
// It returns true on hit. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.stats.Accesses++
	line := addr >> c.lineBits
	set := line & c.setMask
	tag := line >> c.setBits
	base := int(set) * c.cfg.Ways

	// Probe.
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stats.Hits++
			c.touch(i)
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}

	// Miss.
	c.stats.Misses++
	if write {
		c.stats.WriteMiss++
	} else {
		c.stats.ReadMiss++
	}
	c.missFill(line, set, tag, base, write)
	return false
}

// missFill performs everything a demand miss does after the probe: DRRIP
// set-dueling vote, victim selection, fill, replacement-metadata insertion
// and the optional next-line prefetch. It is shared verbatim between the
// scalar Access path and AccessBatch, so the two paths cannot drift.
// It returns the way index the line was filled into (used by AccessBatch's
// line memo).
func (c *Cache) missFill(line, set, tag uint64, base int, write bool) int {
	if c.cfg.Policy == DRRIP {
		// Leader-set misses steer PSEL: an SRRIP-leader miss votes
		// against SRRIP (increment), a BRRIP-leader miss votes against
		// BRRIP (decrement).
		switch set % leaderPeriod {
		case 0:
			if c.psel < pselMax {
				c.psel++
			}
		case 1:
			if c.psel > 0 {
				c.psel--
			}
		}
	}
	victim := c.victim(base, set)
	if c.valid[victim] {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.stats.Writebacks++
		}
	} else {
		c.occ[set]++
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.insert(victim, set)
	if c.cfg.NextLinePrefetch {
		c.prefetch(line + 1)
	}
	return victim
}

// Prefetch fills addr's line exactly as the next-line prefetcher does: if
// the line is absent it is inserted cold (distant RRPV / oldest LRU stamp)
// so it is the first eviction candidate until a demand access promotes it.
// Sharded uses this to route a shard's next-line prefetch into the shard
// that owns line+1; it is not part of the demand-access accounting (no
// Accesses/Hits/Misses update, only Prefetches and eviction counters).
func (c *Cache) Prefetch(addr uint64) {
	c.prefetch(addr >> c.lineBits)
}

// prefetch fills the given line if absent, inserting it cold so it is the
// first candidate for eviction until a demand access promotes it.
func (c *Cache) prefetch(line uint64) {
	set := line & c.setMask
	tag := line >> c.setBits
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return // already resident
		}
	}
	victim := c.victim(base, set)
	if c.valid[victim] {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.stats.Writebacks++
		}
	} else {
		c.occ[set]++
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.dirty[victim] = false
	// Cold insertion: distant RRPV / oldest LRU stamp.
	if c.cfg.Policy == LRU {
		c.meta[victim] = 0
	} else {
		c.meta[victim] = rrpvDistant
	}
	c.stats.Prefetches++
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(i int) {
	switch c.cfg.Policy {
	case LRU:
		c.clock++
		c.meta[i] = c.clock
	default: // all RRIP variants promote to RRPV 0 on hit
		c.meta[i] = 0
	}
}

// insert sets replacement metadata for a newly filled line.
func (c *Cache) insert(i int, set uint64) {
	switch c.setRole(set) {
	case LRU:
		c.clock++
		c.meta[i] = c.clock
	case SRRIP:
		c.meta[i] = rrpvLong
	case BRRIP:
		c.brripCtr++
		if c.brripCtr%brripEpsilon == 0 {
			c.meta[i] = rrpvLong
		} else {
			c.meta[i] = rrpvDistant
		}
	}
}

// victim picks the way to fill in the set starting at base.
func (c *Cache) victim(base int, set uint64) int {
	ways := c.cfg.Ways
	// Invalid way first; skipped entirely when the set is known full.
	if int(c.occ[set]) < ways {
		valid := c.valid[base : base+ways]
		for w, v := range valid {
			if !v {
				return base + w
			}
		}
	}
	meta := c.meta[base : base+ways]
	if c.cfg.Policy == LRU {
		best := 0
		for w := 1; w < ways; w++ {
			if meta[w] < meta[best] {
				best = w
			}
		}
		return base + best
	}
	// RRIP: evict the first way at RRPV == rrpvMax, aging all ways until
	// one appears. Done in one scan: raising every RRPV by the same amount
	// makes the first way holding the maximum the first to reach rrpvMax,
	// so that way is the victim — identical to the textbook scan-and-age
	// loop, without the repeated passes.
	best, max := 0, meta[0]
	for w := 1; w < ways; w++ {
		if meta[w] > max {
			best, max = w, meta[w]
		}
	}
	if d := rrpvMax - max; d != 0 {
		for w := range meta {
			meta[w] += d
		}
	}
	return base + best
}

// Contains reports whether addr's line is currently cached, without
// updating any state. Used by tests and by the ECS scanner.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineBits
	set := line & c.setMask
	tag := line >> c.setBits
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Snapshot calls fn with the base address of every valid line. It performs
// no state updates; the paper's ECS metric periodically scans cache
// contents this way (§VI-F).
func (c *Cache) Snapshot(fn func(lineAddr uint64)) {
	setBits := c.setBits
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			if c.valid[base+w] {
				line := c.tags[base+w]<<setBits | uint64(set)
				fn(line << c.lineBits)
			}
		}
	}
}

// ValidLines returns the number of currently valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
