package cachesim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// State-level differential tests for AccessBatch. The core differential
// suite compares end-to-end SimResults; these compare the *complete*
// internal cache state — tags, valid, dirty, replacement metadata, PSEL,
// BRRIP counter, LRU clock, per-set occupancy and statistics — after every
// batch cut, so a divergence is caught at the first access that drifts
// rather than smeared into an end-of-run counter diff.

// assertSameState compares every piece of mutable state of two caches.
func assertSameState(t *testing.T, name string, want, got *Cache) {
	t.Helper()
	if want.stats != got.stats {
		t.Fatalf("%s: stats = %+v, want %+v", name, got.stats, want.stats)
	}
	if want.psel != got.psel || want.clock != got.clock || want.brripCtr != got.brripCtr {
		t.Fatalf("%s: (psel,clock,brripCtr) = (%d,%d,%d), want (%d,%d,%d)",
			name, got.psel, got.clock, got.brripCtr, want.psel, want.clock, want.brripCtr)
	}
	if !reflect.DeepEqual(want.tags, got.tags) {
		t.Fatalf("%s: tags diverge", name)
	}
	if !reflect.DeepEqual(want.valid, got.valid) {
		t.Fatalf("%s: valid bits diverge", name)
	}
	if !reflect.DeepEqual(want.dirty, got.dirty) {
		t.Fatalf("%s: dirty bits diverge", name)
	}
	if !reflect.DeepEqual(want.meta, got.meta) {
		t.Fatalf("%s: replacement metadata diverges", name)
	}
	if !reflect.DeepEqual(want.occ, got.occ) {
		t.Fatalf("%s: per-set occupancy diverges", name)
	}
}

// runDifferential drives the same stream through scalar Access and through
// AccessBatch cut at the given block size, comparing per-access results and
// full state after every block.
func runDifferential(t *testing.T, name string, cfg Config, addrs []uint64, writes []bool, blockSize int) {
	t.Helper()
	scalar, batched := New(cfg), New(cfg)
	hits := make([]bool, blockSize)
	for lo := 0; lo < len(addrs); lo += blockSize {
		hi := lo + blockSize
		if hi > len(addrs) {
			hi = len(addrs)
		}
		block := addrs[lo:hi]
		var wblock []bool
		if writes != nil {
			wblock = writes[lo:hi]
		}
		n := batched.AccessBatch(block, wblock, hits[:len(block)])
		nScalar := 0
		for i, a := range block {
			w := writes != nil && writes[lo+i]
			hit := scalar.Access(a, w)
			if hit {
				nScalar++
			}
			if hits[i] != hit {
				t.Fatalf("%s: access %d (addr %#x): batched hit=%v, scalar hit=%v",
					name, lo+i, a, hits[i], hit)
			}
		}
		if n != nScalar {
			t.Fatalf("%s: block [%d,%d): batched %d hits, scalar %d", name, lo, hi, n, nScalar)
		}
		assertSameState(t, fmt.Sprintf("%s after block [%d,%d)", name, lo, hi), scalar, batched)
	}
}

// mixedStream generates a stream mixing sequential runs (edge-array-like),
// random single accesses (vertex-data-like) and occasional writes, confined
// to a window that keeps the cache under contention.
func mixedStream(rng *rand.Rand, n int, window uint64) ([]uint64, []bool) {
	addrs := make([]uint64, 0, n)
	writes := make([]bool, 0, n)
	for len(addrs) < n {
		switch rng.Intn(3) {
		case 0: // sequential run
			base := rng.Uint64() % window
			for k := 0; k < 8 && len(addrs) < n; k++ {
				addrs = append(addrs, base+uint64(k)*8)
				writes = append(writes, false)
			}
		case 1: // random read
			addrs = append(addrs, rng.Uint64()%window)
			writes = append(writes, false)
		default: // random write
			addrs = append(addrs, rng.Uint64()%window)
			writes = append(writes, true)
		}
	}
	return addrs, writes
}

// TestAccessBatchMatchesScalar sweeps policy × prefetch × batch cut over a
// contended mixed stream.
func TestAccessBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	addrs, writes := mixedStream(rng, 20000, 1<<20)
	for _, pol := range []Policy{LRU, SRRIP, BRRIP, DRRIP} {
		for _, prefetch := range []bool{false, true} {
			// 64 sets × 8 ways: small enough to thrash, 8 ways exercises
			// the tree-reduction victim scan.
			cfg := Config{LineSize: 64, Sets: 64, Ways: 8, Policy: pol, NextLinePrefetch: prefetch}
			// Block size 1 pins per-access equivalence; 7 lands cuts at
			// awkward offsets; 4096 is the production block size.
			for _, bs := range []int{1, 7, 4096} {
				name := fmt.Sprintf("%s/prefetch=%v/bs=%d", pol, prefetch, bs)
				runDifferential(t, name, cfg, addrs, writes, bs)
			}
		}
	}
}

// TestAccessBatchOddWays covers the non-power-of-two associativities that
// take the generic victim-scan paths (ways<=16 masked scan, ways>16 branchy
// scan) instead of the ways==8 tree reduction.
func TestAccessBatchOddWays(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	addrs, writes := mixedStream(rng, 8000, 1<<18)
	for _, ways := range []int{1, 3, 11, 12, 16, 24} {
		cfg := Config{LineSize: 64, Sets: 16, Ways: ways, Policy: DRRIP}
		runDifferential(t, fmt.Sprintf("ways=%d", ways), cfg, addrs, writes, 97)
	}
}

// TestAccessBatchDRRIPLeaderBoundary drives a batch whose accesses alternate
// across the SRRIP-leader set (set 0), the BRRIP-leader set (set 1) and a
// follower set within one block, checking that the branchless PSEL updates
// and the role-dependent insertions agree with the scalar path exactly —
// including the final PSEL value, read directly.
func TestAccessBatchDRRIPLeaderBoundary(t *testing.T) {
	cfg := Config{LineSize: 64, Sets: 64, Ways: 2, Policy: DRRIP}
	// With 64-byte lines and 64 sets, set(addr) = (addr>>6)&63. Conflict
	// misses in sets 0, 1 and 40: every miss in a leader set moves PSEL.
	var addrs []uint64
	for k := 0; k < 2000; k++ {
		set := uint64([]int{0, 1, 40}[k%3])
		tag := uint64(k % 7) // 7 tags > 2 ways: constant conflict misses
		addrs = append(addrs, (tag<<6|set)<<6)
	}
	scalar, batched := New(cfg), New(cfg)
	for _, a := range addrs {
		scalar.Access(a, false)
	}
	// One batch spanning every leader-set transition.
	batched.AccessBatch(addrs, nil, nil)
	assertSameState(t, "drrip-leaders", scalar, batched)
	if scalar.psel == pselInit {
		t.Fatal("stream never moved PSEL; test exercises nothing")
	}
	// PSEL saturation at both rails: hammer only the SRRIP leader, then
	// only the BRRIP leader, far past the counter range.
	scalar.Reset()
	batched.Reset()
	var rail []uint64
	for k := 0; k < 3*pselMax; k++ {
		rail = append(rail, uint64(k%5)<<12) // set 0, 5 conflicting tags
	}
	for k := 0; k < 3*pselMax; k++ {
		rail = append(rail, uint64(k%5)<<12|1<<6) // set 1
	}
	for _, a := range rail {
		scalar.Access(a, false)
	}
	batched.AccessBatch(rail, nil, nil)
	assertSameState(t, "psel-rails", scalar, batched)
}

// TestAccessBatchPrefetchAddressWrap pins next-line prefetching at the top
// of the address space. With lineBits > 0 the last line's successor is a
// phantom line index just past the address space (2^(64-lineBits)), which
// occupies a way but is unreachable by any demand address; with lineBits ==
// 0 the line index spans the full 64 bits and line+1 genuinely wraps to
// line 0. Both paths share prefetch(), so what matters is that the batched
// miss path calls it with the same argument and the states stay identical.
func TestAccessBatchPrefetchAddressWrap(t *testing.T) {
	t.Run("phantom-line", func(t *testing.T) {
		cfg := Config{LineSize: 64, Sets: 16, Ways: 4, Policy: SRRIP, NextLinePrefetch: true}
		lastLine := (^uint64(0)) >> 6 // line index of the top of the address space
		addrs := []uint64{
			lastLine << 6,       // miss; prefetches the phantom line 2^58
			(lastLine - 1) << 6, // miss; prefetches lastLine (already resident)
			^uint64(0),          // last byte of the address space, same last line
		}
		scalar, batched := New(cfg), New(cfg)
		hits := make([]bool, len(addrs))
		batched.AccessBatch(addrs, nil, hits)
		for _, a := range addrs {
			scalar.Access(a, false)
		}
		assertSameState(t, "phantom-line", scalar, batched)
		if !hits[2] {
			t.Fatal("second access to the last line missed")
		}
		// Only the phantom line counts: re-prefetching the already-resident
		// lastLine returns before touching the counter.
		if p := batched.Stats().Prefetches; p != 1 {
			t.Fatalf("Prefetches = %d, want 1", p)
		}
	})
	t.Run("true-wrap", func(t *testing.T) {
		// 1-byte lines: line == addr, so the successor of ^uint64(0) wraps
		// to line 0. Sets > 1 keeps this on the fast tag-only path.
		cfg := Config{LineSize: 1, Sets: 16, Ways: 4, Policy: LRU, NextLinePrefetch: true}
		addrs := []uint64{
			^uint64(0), // miss; prefetch(line+1) wraps to line 0
			0,          // must hit the wrapped prefetch
		}
		scalar, batched := New(cfg), New(cfg)
		hits := make([]bool, len(addrs))
		batched.AccessBatch(addrs, nil, hits)
		for _, a := range addrs {
			scalar.Access(a, false)
		}
		assertSameState(t, "true-wrap", scalar, batched)
		if !hits[1] {
			t.Fatal("access to line 0 missed; prefetch(^uint64(0)+1) did not wrap")
		}
	})
}

// TestTLBAccessBatchPageStraddle sends a batch whose consecutive addresses
// straddle page boundaries — the last byte of one page followed by the
// first of the next — plus re-touches, and checks per-access results and
// state against the scalar TLB.
func TestTLBAccessBatchPageStraddle(t *testing.T) {
	cfg := TLBConfig{PageSize: 4096, Entries: 16, Ways: 4}
	var addrs []uint64
	for p := uint64(0); p < 40; p++ {
		addrs = append(addrs,
			p*4096+4095, // last byte of page p
			(p+1)*4096,  // first byte of page p+1
			p*4096+2048, // back into page p: must hit
		)
	}
	scalar, batched := NewTLB(cfg), NewTLB(cfg)
	hits := make([]bool, len(addrs))
	batched.AccessBatch(addrs, hits)
	for i, a := range addrs {
		if hit := scalar.Access(a); hit != hits[i] {
			t.Fatalf("access %d (addr %#x): batched hit=%v, scalar hit=%v", i, a, hits[i], hit)
		}
	}
	assertSameState(t, "tlb-straddle", scalar.c, batched.c)
}

// TestHierarchyAccessBatchMatchesScalar compares the miss-compacted
// hierarchy walk against the scalar per-access walk: per-access hit levels
// and the full state of every level.
func TestHierarchyAccessBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	addrs, writes := mixedStream(rng, 12000, 1<<19)
	mk := func() *Hierarchy {
		return NewHierarchy(
			Config{Name: "L1", LineSize: 64, Sets: 8, Ways: 2, Policy: LRU},
			Config{Name: "L2", LineSize: 64, Sets: 32, Ways: 4, Policy: SRRIP},
			Config{Name: "L3", LineSize: 64, Sets: 64, Ways: 8, Policy: DRRIP},
		)
	}
	scalar, batched := mk(), mk()
	for _, bs := range []int{1, 13, 4096} {
		scalar.Reset()
		batched.Reset()
		levels := make([]int, bs)
		for lo := 0; lo < len(addrs); lo += bs {
			hi := lo + bs
			if hi > len(addrs) {
				hi = len(addrs)
			}
			batched.AccessBatch(addrs[lo:hi], writes[lo:hi], levels[:hi-lo])
			for i := lo; i < hi; i++ {
				want := scalar.Access(addrs[i], writes[i])
				if levels[i-lo] != want {
					t.Fatalf("bs=%d: access %d hit level %d, want %d", bs, i, levels[i-lo], want)
				}
			}
			for li := 0; li < scalar.Levels(); li++ {
				assertSameState(t, fmt.Sprintf("bs=%d level %d after [%d,%d)", bs, li, lo, hi),
					scalar.levels[li], batched.levels[li])
			}
		}
	}
}

// TestAccessBatchDegenerateGeometry pins the scalar fallback for the
// 1-byte-line single-set cache, where a real tag can equal invalidTag and
// the tag-only probe would be wrong.
func TestAccessBatchDegenerateGeometry(t *testing.T) {
	cfg := Config{LineSize: 1, Sets: 1, Ways: 2, Policy: LRU}
	// Includes ^uint64(0), whose tag IS invalidTag under this geometry.
	addrs := []uint64{0, 1, ^uint64(0), 0, ^uint64(0), 2, 1, ^uint64(0)}
	scalar, batched := New(cfg), New(cfg)
	hits := make([]bool, len(addrs))
	batched.AccessBatch(addrs, nil, hits)
	for i, a := range addrs {
		if hit := scalar.Access(a, false); hit != hits[i] {
			t.Fatalf("access %d (addr %#x): batched hit=%v, scalar hit=%v", i, a, hits[i], hit)
		}
	}
	assertSameState(t, "degenerate", scalar, batched)
}

// TestOccTracksValid cross-checks the per-set occupancy counters against a
// recount of the valid bits after a contended run with prefetching.
func TestOccTracksValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	addrs, writes := mixedStream(rng, 10000, 1<<16)
	c := New(Config{LineSize: 64, Sets: 16, Ways: 8, Policy: DRRIP, NextLinePrefetch: true})
	c.AccessBatch(addrs, writes, nil)
	for set := 0; set < c.cfg.Sets; set++ {
		n := uint16(0)
		for w := 0; w < c.cfg.Ways; w++ {
			if c.valid[set*c.cfg.Ways+w] {
				n++
			}
		}
		if c.occ[set] != n {
			t.Fatalf("set %d: occ=%d but %d valid ways", set, c.occ[set], n)
		}
	}
}
