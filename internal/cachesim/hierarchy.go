package cachesim

// Hierarchy models a multi-level cache (L1 → L2 → L3 → memory) with
// fill-on-miss at every level (non-inclusive, non-exclusive — "NINE", the
// common academic model and close to Skylake-SP's non-inclusive L3). The
// paper simulates the shared L3 only, because SpMV's random accesses blow
// through the private levels; Hierarchy lets that assumption be checked
// rather than assumed.
type Hierarchy struct {
	levels []*Cache

	// Scratch buffers for AccessBatch's per-level miss compaction, sized
	// lazily to the largest block seen.
	batchHits  []bool
	missAddrs  []uint64
	missWrites []bool
	missIdx    []int
}

// NewHierarchy builds a hierarchy from the innermost level outward.
// At least one level is required.
func NewHierarchy(cfgs ...Config) *Hierarchy {
	if len(cfgs) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{levels: make([]*Cache, len(cfgs))}
	for i, cfg := range cfgs {
		h.levels[i] = New(cfg)
	}
	return h
}

// SkylakeHierarchy returns the paper machine's per-core path: 32 KiB
// 8-way L1D, 1 MiB 16-way L2, 22 MiB 11-way DRRIP L3.
func SkylakeHierarchy() *Hierarchy {
	return NewHierarchy(
		Config{Name: "L1D", LineSize: 64, Sets: 64, Ways: 8, Policy: LRU},
		Config{Name: "L2", LineSize: 64, Sets: 1024, Ways: 16, Policy: LRU},
		SkylakeL3(),
	)
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Access walks the hierarchy: a hit at level i fills all levels < i (and
// promotes recency at i); a miss everywhere fills every level from
// memory. It returns the 0-based level that hit, or Levels() for a memory
// access.
func (h *Hierarchy) Access(addr uint64, write bool) int {
	for i, c := range h.levels {
		if c.Access(addr, write) {
			return i
		}
	}
	return len(h.levels)
}

// LevelStats returns the statistics of level i (0 = innermost).
func (h *Hierarchy) LevelStats(i int) Stats { return h.levels[i].Stats() }

// MemoryAccesses returns the number of accesses that missed every level —
// the traffic reaching main memory (the paper's "L3 misses" when the
// outermost level is the L3).
func (h *Hierarchy) MemoryAccesses() uint64 {
	return h.levels[len(h.levels)-1].Stats().Misses
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
}
