package cachesim

import "testing"

func TestTLBPageGranularity(t *testing.T) {
	tlb := NewTLB(TLBConfig{PageSize: 4096, Entries: 16, Ways: 4})
	if tlb.Access(0) {
		t.Error("cold TLB access hit")
	}
	// Any address on the same page hits.
	if !tlb.Access(4095) {
		t.Error("same-page access missed")
	}
	// Next page misses.
	if tlb.Access(4096) {
		t.Error("next-page access hit")
	}
	if tlb.PageSize() != 4096 {
		t.Errorf("PageSize = %d", tlb.PageSize())
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := NewTLB(TLBConfig{PageSize: 4096, Entries: 8, Ways: 2})
	// Touch 8 pages: all fit.
	for p := uint64(0); p < 8; p++ {
		tlb.Access(p * 4096)
	}
	for p := uint64(0); p < 8; p++ {
		if !tlb.Access(p * 4096) {
			t.Errorf("page %d evicted from an exactly-fitting TLB", p)
		}
	}
	st := tlb.Stats()
	if st.Misses != 8 || st.Hits != 8 {
		t.Errorf("stats = %+v", st)
	}
	tlb.Reset()
	if tlb.Stats().Accesses != 0 {
		t.Error("reset failed")
	}
}

func TestSkylakeSTLBGeometry(t *testing.T) {
	cfg := SkylakeSTLB()
	if cfg.Entries != 1536 || cfg.Ways != 12 || cfg.PageSize != 4096 {
		t.Errorf("SkylakeSTLB = %+v", cfg)
	}
	tlb := NewTLB(cfg)
	if tlb.c.Config().Sets != 128 {
		t.Errorf("sets = %d, want 128", tlb.c.Config().Sets)
	}
}

func TestScaledL3(t *testing.T) {
	cfg := ScaledL3(1<<20, 0.04)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Capacity should be within 2x of the 4% target (power-of-two rounding).
	target := 0.04 * float64(uint32(1<<20)) * 8
	size := float64(cfg.SizeBytes())
	if size < target/2 || size > target*1.01 {
		t.Errorf("ScaledL3 size %v not within (target/2, target]: target %v", size, target)
	}
	if cfg.Policy != DRRIP {
		t.Error("ScaledL3 should use DRRIP")
	}
	// Tiny graphs still get the minimum geometry.
	tiny := ScaledL3(16, 0.04)
	if tiny.Sets < 16 {
		t.Errorf("minimum sets not enforced: %d", tiny.Sets)
	}
}

func TestScaledTLB(t *testing.T) {
	cfg := ScaledTLB(64<<20, 0.1)
	if cfg.Entries < 16 || cfg.Entries%cfg.Ways != 0 {
		t.Errorf("ScaledTLB = %+v", cfg)
	}
	tlb := NewTLB(cfg)
	if tlb.PageSize() != 4096 {
		t.Error("wrong page size")
	}
	small := ScaledTLB(100, 0.1)
	if small.Entries < 16 {
		t.Errorf("minimum entries not enforced: %d", small.Entries)
	}
}

func TestSkylakeL3Geometry(t *testing.T) {
	cfg := SkylakeL3()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SizeBytes() != 22*1024*1024 {
		t.Errorf("SkylakeL3 size = %d bytes, want 22 MiB", cfg.SizeBytes())
	}
}
