package cachesim

import "testing"

func benchAccess(b *testing.B, p Policy) {
	c := New(Config{Name: "b", LineSize: 64, Sets: 1024, Ways: 8, Policy: p})
	rng := newTestRNG(42)
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = rng.next() & 0xFFFFFF
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}

func BenchmarkAccessLRU(b *testing.B)   { benchAccess(b, LRU) }
func BenchmarkAccessSRRIP(b *testing.B) { benchAccess(b, SRRIP) }
func BenchmarkAccessDRRIP(b *testing.B) { benchAccess(b, DRRIP) }

func BenchmarkTLBAccess(b *testing.B) {
	t := NewTLB(SkylakeSTLB())
	rng := newTestRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(rng.next() & 0xFFFFFFF)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(
		Config{Name: "L1", LineSize: 64, Sets: 64, Ways: 8, Policy: LRU},
		Config{Name: "L2", LineSize: 64, Sets: 512, Ways: 8, Policy: LRU},
		Config{Name: "L3", LineSize: 64, Sets: 2048, Ways: 8, Policy: DRRIP},
	)
	rng := newTestRNG(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(rng.next()&0xFFFFFF, false)
	}
}

// benchAccessBatch measures the batched path on the same address
// distribution as benchAccess; b.N counts simulated accesses, so ns/op is
// directly comparable to the scalar benchmarks above.
func benchAccessBatch(b *testing.B, p Policy) {
	c := New(Config{Name: "b", LineSize: 64, Sets: 1024, Ways: 8, Policy: p})
	rng := newTestRNG(42)
	addrs := make([]uint64, 1<<16)
	writes := make([]bool, 1<<16)
	for i := range addrs {
		addrs[i] = rng.next() & 0xFFFFFF
		writes[i] = i&7 == 0
	}
	const block = 4096
	b.ResetTimer()
	for done := 0; done < b.N; {
		for lo := 0; lo < len(addrs) && done < b.N; lo += block {
			hi := lo + block
			if n := b.N - done; hi-lo > n {
				hi = lo + n
			}
			c.AccessBatch(addrs[lo:hi], writes[lo:hi], nil)
			done += hi - lo
		}
	}
}

func BenchmarkAccessBatchLRU(b *testing.B)   { benchAccessBatch(b, LRU) }
func BenchmarkAccessBatchSRRIP(b *testing.B) { benchAccessBatch(b, SRRIP) }
func BenchmarkAccessBatchDRRIP(b *testing.B) { benchAccessBatch(b, DRRIP) }
