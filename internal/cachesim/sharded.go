package cachesim

import (
	"fmt"
	"math/bits"
	"sync"
)

// Sharded models one logical set-associative cache split into independent
// set-interleaved shards, the way a multicore LLC is physically banked (and
// the way a NUMA node slices a shared L3). Shard ownership is by the low
// bits of the set index — owner(line) = set(line) mod shards — and each
// shard is a private *Cache over its slice of the sets, remapped so the
// per-shard tags equal the global cache's tags.
//
// Determinism and exactness model (DESIGN.md §15):
//
//   - For LRU and SRRIP, all replacement state is per-set, so a Sharded
//     cache driven with any access stream produces exactly the hit/miss
//     results, final contents and merged Stats the single Cache of the same
//     global geometry produces — including NextLinePrefetch, which Sharded
//     routes to the shard owning line+1 via Cache.Prefetch.
//   - BRRIP and DRRIP carry global policy state (the bimodal counter and
//     PSEL); a Sharded cache gives each shard its own copy — the NUMA-slice
//     model, in which every bank duels independently. Results then differ
//     from the single cache but remain bit-deterministic: they depend only
//     on the access stream and geometry, never on goroutine scheduling.
//   - AccessBatchParallel drives the shards from one goroutine each after
//     compacting the batch per shard. Because every piece of state it
//     touches is shard-private (prefetch, the only cross-shard interaction,
//     forces the serial path), the result is bit-identical to the serial
//     AccessBatch at every shard count — FuzzShardedMergeVsSingle and the
//     sharded differential tests hold all three paths together.
type Sharded struct {
	cfg    Config
	shards []*Cache

	lineBits     uint
	setBits      uint   // log2(global Sets)
	setMask      uint64 // global Sets-1
	shardBits    uint   // log2(len(shards))
	shardMask    uint64 // len(shards)-1
	localSetBits uint   // setBits - shardBits

	// Per-shard compaction scratch for the batch paths, lazily grown.
	batch []shardBatch
}

// shardBatch is one shard's compacted slice of a batch: the remapped
// addresses, the write flags, and each access's index in the original batch
// (for scattering per-access hit results back in order).
type shardBatch struct {
	addrs  []uint64
	writes []bool
	hits   []bool
	idx    []int
}

// NewSharded builds a sharded cache with the given *global* geometry split
// into shards. shards must be a power of two between 1 and cfg.Sets; each
// shard receives cfg.Sets/shards sets at the global associativity. It
// panics on invalid geometry, like New.
func NewSharded(cfg Config, shards int) *Sharded {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if shards < 1 || bits.OnesCount(uint(shards)) != 1 || shards > cfg.Sets {
		panic(fmt.Sprintf("cachesim: shard count %d must be a power of two in [1, Sets=%d]", shards, cfg.Sets))
	}
	s := &Sharded{
		cfg:          cfg,
		shards:       make([]*Cache, shards),
		lineBits:     uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setBits:      uint(bits.TrailingZeros(uint(cfg.Sets))),
		setMask:      uint64(cfg.Sets - 1),
		shardBits:    uint(bits.TrailingZeros(uint(shards))),
		shardMask:    uint64(shards - 1),
		localSetBits: uint(bits.TrailingZeros(uint(cfg.Sets))) - uint(bits.TrailingZeros(uint(shards))),
		batch:        make([]shardBatch, shards),
	}
	sub := cfg
	sub.Sets = cfg.Sets / shards
	// The wrapper routes prefetches itself (line+1 can live in another
	// shard), so the sub-caches never prefetch on their own.
	sub.NextLinePrefetch = false
	for i := range s.shards {
		s.shards[i] = New(sub)
	}
	return s
}

// Config returns the global (pre-split) configuration.
func (s *Sharded) Config() Config { return s.cfg }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's underlying cache (for per-shard statistics and
// tests).
func (s *Sharded) Shard(i int) *Cache { return s.shards[i] }

// route maps a global line to its owning shard and the line's address image
// inside that shard's smaller geometry. The remap keeps the tag intact:
// localLine = tag<<localSetBits | set>>shardBits, so the sub-cache computes
// set' = set>>shardBits and tag' = tag.
func (s *Sharded) route(line uint64) (int, uint64) {
	set := line & s.setMask
	tag := line >> s.setBits
	return int(set & s.shardMask), tag<<s.localSetBits | set>>s.shardBits
}

// Access simulates one access, returning true on hit. A demand miss with
// NextLinePrefetch configured prefetches line+1 into the shard owning it,
// exactly where the single cache would install it.
func (s *Sharded) Access(addr uint64, write bool) bool {
	line := addr >> s.lineBits
	shard, local := s.route(line)
	hit := s.shards[shard].Access(local<<s.lineBits, write)
	if !hit && s.cfg.NextLinePrefetch {
		pShard, pLocal := s.route(line + 1)
		s.shards[pShard].Prefetch(pLocal << s.lineBits)
	}
	return hit
}

// compact splits the batch into per-shard sub-batches, preserving each
// shard's relative access order (the only order that can matter once no
// state crosses shards). recordHits sizes the per-shard hit buffers.
func (s *Sharded) compact(addrs []uint64, writes []bool, recordHits bool) {
	for i := range s.batch {
		b := &s.batch[i]
		b.addrs = b.addrs[:0]
		b.writes = b.writes[:0]
		b.idx = b.idx[:0]
	}
	for i, addr := range addrs {
		line := addr >> s.lineBits
		shard, local := s.route(line)
		b := &s.batch[shard]
		b.addrs = append(b.addrs, local<<s.lineBits)
		b.writes = append(b.writes, writes != nil && writes[i])
		b.idx = append(b.idx, i)
	}
	if recordHits {
		for i := range s.batch {
			b := &s.batch[i]
			if cap(b.hits) < len(b.addrs) {
				b.hits = make([]bool, len(b.addrs))
			}
			b.hits = b.hits[:len(b.addrs)]
		}
	}
}

// AccessBatch simulates len(addrs) accesses in order on one goroutine.
// writes nil means all loads; hits, when non-nil, receives per-access hit
// results. With NextLinePrefetch configured it routes access by access (a
// miss's prefetch must land in the neighbouring shard before the next
// access, as in the single cache); otherwise it drives each shard with its
// compacted sub-batch, which is bit-identical because no state is shared
// between shards. Returns the number of hits.
func (s *Sharded) AccessBatch(addrs []uint64, writes, hits []bool) int {
	if s.cfg.NextLinePrefetch {
		n := 0
		for i, addr := range addrs {
			hit := s.Access(addr, writes != nil && writes[i])
			if hits != nil {
				hits[i] = hit
			}
			if hit {
				n++
			}
		}
		return n
	}
	s.compact(addrs, writes, hits != nil)
	n := 0
	for i, c := range s.shards {
		b := &s.batch[i]
		if len(b.addrs) == 0 {
			continue
		}
		if hits != nil {
			n += c.AccessBatch(b.addrs, b.writes, b.hits)
			for j, k := range b.idx {
				hits[k] = b.hits[j]
			}
		} else {
			n += c.AccessBatch(b.addrs, b.writes, nil)
		}
	}
	return n
}

// AccessBatchParallel is AccessBatch with the per-shard sub-batches driven
// by one goroutine per (non-empty) shard. All replacement and statistics
// state is shard-private, so the result — per-access hits, final contents,
// merged Stats — is bit-identical to AccessBatch regardless of scheduling.
// With NextLinePrefetch configured it falls back to the serial path, whose
// cross-shard prefetch ordering cannot be parallelized exactly. Returns the
// number of hits.
func (s *Sharded) AccessBatchParallel(addrs []uint64, writes, hits []bool) int {
	if s.cfg.NextLinePrefetch || len(s.shards) == 1 {
		return s.AccessBatch(addrs, writes, hits)
	}
	s.compact(addrs, writes, hits != nil)
	counts := make([]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(s.batch[i].addrs) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &s.batch[i]
			if hits != nil {
				counts[i] = s.shards[i].AccessBatch(b.addrs, b.writes, b.hits)
				// Distinct batch indices per shard: scatters never overlap.
				for j, k := range b.idx {
					hits[k] = b.hits[j]
				}
			} else {
				counts[i] = s.shards[i].AccessBatch(b.addrs, b.writes, nil)
			}
		}(i)
	}
	wg.Wait()
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// Stats returns the shard statistics merged in shard order. For LRU/SRRIP
// the merge equals the single cache's Stats for the same stream; for
// BRRIP/DRRIP it is the deterministic NUMA-slice aggregate.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, c := range s.shards {
		st := c.Stats()
		total.Accesses += st.Accesses
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.ReadMiss += st.ReadMiss
		total.WriteMiss += st.WriteMiss
		total.Evictions += st.Evictions
		total.Writebacks += st.Writebacks
		total.Prefetches += st.Prefetches
	}
	return total
}

// Contains reports whether addr's line is resident in its owning shard.
func (s *Sharded) Contains(addr uint64) bool {
	shard, local := s.route(addr >> s.lineBits)
	return s.shards[shard].Contains(local << s.lineBits)
}

// Snapshot calls fn with the base address of every valid line, iterating
// global sets in ascending order like Cache.Snapshot (shard-independent
// order, so ECS scans are deterministic and comparable).
func (s *Sharded) Snapshot(fn func(lineAddr uint64)) {
	for set := 0; set < s.cfg.Sets; set++ {
		c := s.shards[uint64(set)&s.shardMask]
		localSet := set >> s.shardBits
		base := localSet * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			if c.valid[base+w] {
				// Sub-cache tags are global tags by construction.
				line := c.tags[base+w]<<s.setBits | uint64(set)
				fn(line << s.lineBits)
			}
		}
	}
}

// ValidLines returns the number of valid lines across all shards.
func (s *Sharded) ValidLines() int {
	n := 0
	for _, c := range s.shards {
		n += c.ValidLines()
	}
	return n
}

// Reset clears every shard.
func (s *Sharded) Reset() {
	for _, c := range s.shards {
		c.Reset()
	}
}

// ShardedHierarchy is the NUMA-aware hierarchy mode: every node owns a
// private inner path (e.g. L1D+L2) and all nodes share one set-interleaved
// Sharded LLC, the topology of a multi-socket Skylake-SP. Accesses are
// attributed to a node (in trace replay, thread→node); the private levels
// see only that node's stream while the LLC sees the merged stream through
// its shard interleave. Not safe for concurrent use — determinism comes
// from the driving access order, as everywhere in cachesim.
type ShardedHierarchy struct {
	private [][]*Cache // [node][level]
	llc     *Sharded
}

// NewShardedHierarchy builds a hierarchy of nodes NUMA nodes, each with a
// private copy of privateCfgs (innermost first), sharing one Sharded LLC of
// llcCfg split into llcShards. nodes must be >= 1; privateCfgs may be empty
// (LLC-only, the paper's model).
func NewShardedHierarchy(nodes int, privateCfgs []Config, llcCfg Config, llcShards int) *ShardedHierarchy {
	if nodes < 1 {
		panic("cachesim: sharded hierarchy needs at least one node")
	}
	h := &ShardedHierarchy{
		private: make([][]*Cache, nodes),
		llc:     NewSharded(llcCfg, llcShards),
	}
	for n := range h.private {
		levels := make([]*Cache, len(privateCfgs))
		for i, cfg := range privateCfgs {
			levels[i] = New(cfg)
		}
		h.private[n] = levels
	}
	return h
}

// SkylakeNUMA returns a nodes-socket Skylake-SP model: per-node private
// 32 KiB 8-way L1D and 1 MiB 16-way L2, sharing the 22 MiB DRRIP L3
// sharded one bank per node (rounded down to a power of two).
func SkylakeNUMA(nodes int) *ShardedHierarchy {
	shards := 1
	for shards*2 <= nodes {
		shards *= 2
	}
	return NewShardedHierarchy(nodes,
		[]Config{
			{Name: "L1D", LineSize: 64, Sets: 64, Ways: 8, Policy: LRU},
			{Name: "L2", LineSize: 64, Sets: 1024, Ways: 16, Policy: LRU},
		},
		SkylakeL3(), shards)
}

// Nodes returns the number of NUMA nodes.
func (h *ShardedHierarchy) Nodes() int { return len(h.private) }

// PrivateLevels returns the number of per-node private levels.
func (h *ShardedHierarchy) PrivateLevels() int {
	if len(h.private) == 0 {
		return 0
	}
	return len(h.private[0])
}

// LLC returns the shared sharded last-level cache.
func (h *ShardedHierarchy) LLC() *Sharded { return h.llc }

// Access walks node's private path then the shared LLC, filling on miss at
// every level (NINE, like Hierarchy). It returns the 0-based level that
// hit, with PrivateLevels() meaning the LLC and PrivateLevels()+1 memory.
func (h *ShardedHierarchy) Access(node int, addr uint64, write bool) int {
	for i, c := range h.private[node] {
		if c.Access(addr, write) {
			return i
		}
	}
	if h.llc.Access(addr, write) {
		return len(h.private[node])
	}
	return len(h.private[node]) + 1
}

// PrivateStats returns the statistics of node's private level i.
func (h *ShardedHierarchy) PrivateStats(node, level int) Stats {
	return h.private[node][level].Stats()
}

// MemoryAccesses returns the number of accesses that missed every level.
func (h *ShardedHierarchy) MemoryAccesses() uint64 {
	return h.llc.Stats().Misses
}

// Reset clears every private level and the LLC.
func (h *ShardedHierarchy) Reset() {
	for _, levels := range h.private {
		for _, c := range levels {
			c.Reset()
		}
	}
	h.llc.Reset()
}
