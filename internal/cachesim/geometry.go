package cachesim

import "math/bits"

// The paper's machine has a 22 MiB shared L3 per socket (Xeon Gold 6130).
// Graphs in the paper are 41M–1.7B vertices, so the L3 holds roughly
// 0.2–7% of the 8-byte vertex-data array. ScaledL3 reproduces that regime
// for arbitrary dataset sizes: it returns a DRRIP cache sized so that it
// caches about `fraction` of a vertex-data array of n 8-byte elements,
// with 64-byte lines and 16-way associativity, sets rounded to a power of
// two (minimum geometry 64 sets).
// ScaledL3 uses 8-way associativity and a 16-set minimum so that even
// modest synthetic datasets (tens of thousands of vertices) sit in the
// paper's cache-pressure regime.
func ScaledL3(n uint32, fraction float64) Config {
	targetBytes := fraction * float64(n) * 8
	const lineSize, ways = 64, 8
	sets := int(targetBytes / (lineSize * ways))
	if sets < 16 {
		sets = 16
	}
	// Round down to a power of two.
	sets = 1 << (bits.Len(uint(sets)) - 1)
	return Config{
		Name:     "L3",
		LineSize: lineSize,
		Sets:     sets,
		Ways:     ways,
		Policy:   DRRIP,
	}
}

// ScaledTLB returns a 4-way LRU DTLB sized to translate roughly
// `fraction` of a memory footprint of totalBytes with 4 KiB pages
// (minimum 16 entries), preserving the paper's TLB-pressure regime the
// same way ScaledL3 does for the cache.
func ScaledTLB(totalBytes uint64, fraction float64) TLBConfig {
	const pageSize, ways = 4096, 4
	entries := int(fraction * float64(totalBytes) / pageSize)
	if entries < 16 {
		entries = 16
	}
	// Round down to a power of two and align to whole sets.
	entries = 1 << (bits.Len(uint(entries)) - 1)
	if entries < ways {
		entries = ways
	}
	return TLBConfig{PageSize: pageSize, Entries: entries, Ways: ways}
}

// DefaultVertexCacheFraction is the default fraction of the vertex-data
// array the scaled L3 can hold, chosen to sit inside the paper's 0.2–7%
// range (see DESIGN.md §5).
const DefaultVertexCacheFraction = 0.04

// SkylakeL3 returns the paper machine's per-socket L3 geometry: 22 MiB,
// 64-byte lines, 11-way (32768 sets), DRRIP replacement.
func SkylakeL3() Config {
	return Config{Name: "L3", LineSize: 64, Sets: 32768, Ways: 11, Policy: DRRIP}
}
