package cachesim

// TLB wraps Cache to model a data TLB: a set-associative cache of virtual
// page translations. The paper reports DTLB misses as a locality metric at
// page granularity, i.e. at longer reuse distances than L3 misses (§VI-E).
type TLB struct {
	c        *Cache
	pageSize int
}

// TLBConfig describes the TLB geometry.
type TLBConfig struct {
	PageSize int // bytes; power of two (4096 or 2<<20)
	Entries  int // total translations
	Ways     int
}

// SkylakeSTLB returns the 1536-entry, 12-way unified second-level TLB
// geometry of the paper's Xeon Gold 6130 with 4 KiB pages.
func SkylakeSTLB() TLBConfig {
	return TLBConfig{PageSize: 4096, Entries: 1536, Ways: 12}
}

// NewTLB builds a TLB with LRU replacement.
func NewTLB(cfg TLBConfig) *TLB {
	sets := cfg.Entries / cfg.Ways
	return &TLB{
		c: New(Config{
			Name:     "DTLB",
			LineSize: cfg.PageSize,
			Sets:     sets,
			Ways:     cfg.Ways,
			Policy:   LRU,
		}),
		pageSize: cfg.PageSize,
	}
}

// Access looks up addr's page translation; returns true on TLB hit.
func (t *TLB) Access(addr uint64) bool { return t.c.Access(addr, false) }

// Stats returns accumulated statistics.
func (t *TLB) Stats() Stats { return t.c.Stats() }

// Reset clears contents and statistics.
func (t *TLB) Reset() { t.c.Reset() }

// PageSize returns the translation granularity in bytes.
func (t *TLB) PageSize() int { return t.pageSize }
