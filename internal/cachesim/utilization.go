package cachesim

import "math/bits"

// Line-utilization tracking: how many of a cache line's 8-byte words are
// actually touched between fill and eviction. This quantifies *spatial*
// locality directly — orderings with good type-I/III locality (§IV-D) use
// most of every fetched line, while scattered orderings fetch 64 bytes to
// use 8. It complements ECS: ECS asks how much of the cache holds useful
// data, utilization asks how much of each fetched line was useful.

// UtilizationStats summarizes word usage of evicted lines.
type UtilizationStats struct {
	// Histogram[w] counts evicted lines that had exactly w words touched
	// (index 0 is unused; lines are touched at least once when filled).
	Histogram []uint64
	// Evicted is the number of lines accounted.
	Evicted uint64
}

// Merge folds another stats object (from a shadow cache of the same
// geometry) into this one. Both histograms must have the same word count.
func (u *UtilizationStats) Merge(o UtilizationStats) {
	if len(u.Histogram) == 0 {
		u.Histogram = make([]uint64, len(o.Histogram))
	}
	if len(u.Histogram) != len(o.Histogram) {
		panic("cachesim: merging utilization stats of different line sizes")
	}
	for w, c := range o.Histogram {
		u.Histogram[w] += c
	}
	u.Evicted += o.Evicted
}

// MeanWords returns the average number of touched words per line.
func (u UtilizationStats) MeanWords() float64 {
	var sum, n uint64
	for w, c := range u.Histogram {
		sum += uint64(w) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MeanFraction returns the mean fraction of each line's words touched.
func (u UtilizationStats) MeanFraction() float64 {
	if len(u.Histogram) <= 1 {
		return 0
	}
	return u.MeanWords() / float64(len(u.Histogram)-1)
}

// UtilizationTracker observes a Cache's accesses and evictions to build
// line-utilization statistics. It shadows the cache's content: drive it
// with the same access stream via Observe.
type UtilizationTracker struct {
	c     *Cache
	words int
	// touched[line index] = bitmask of words touched since fill.
	touched []uint64
	// filled mirrors validity as seen by the tracker.
	filled []uint64 // line tag per slot, to detect replacement
	valid  []bool
	stats  UtilizationStats
}

// NewUtilizationTracker builds a tracker for the given cache geometry.
// The cache must use a line size of at most 512 bytes (64 words).
func NewUtilizationTracker(cfg Config) *UtilizationTracker {
	words := cfg.LineSize / 8
	if words < 1 {
		words = 1
	}
	if words > 64 {
		panic("cachesim: utilization tracking supports at most 512-byte lines")
	}
	n := cfg.Sets * cfg.Ways
	return &UtilizationTracker{
		c:       New(cfg),
		words:   words,
		touched: make([]uint64, n),
		filled:  make([]uint64, n),
		valid:   make([]bool, n),
		stats:   UtilizationStats{Histogram: make([]uint64, words+1)},
	}
}

// Access drives the shadow cache with one access and updates word masks.
// It returns whether the access hit.
func (t *UtilizationTracker) Access(addr uint64, write bool) bool {
	line := addr >> t.c.lineBits
	word := uint((addr >> 3)) % uint(t.words)
	set := line & t.c.setMask
	base := int(set) * t.c.cfg.Ways

	hit := t.c.Access(addr, write)
	// Locate the slot now holding the line.
	slot := -1
	for w := 0; w < t.c.cfg.Ways; w++ {
		i := base + w
		if t.c.valid[i] && t.c.tags[i] == line>>uint(bits.TrailingZeros(uint(t.c.cfg.Sets))) {
			slot = i
			break
		}
	}
	if slot < 0 {
		return hit // should not happen: the line was just filled
	}
	if !hit {
		// The slot was refilled; account the evicted line's usage.
		if t.valid[slot] {
			t.record(slot)
		}
		t.valid[slot] = true
		t.filled[slot] = line
		t.touched[slot] = 0
	}
	t.touched[slot] |= 1 << word
	return hit
}

func (t *UtilizationTracker) record(slot int) {
	w := bits.OnesCount64(t.touched[slot])
	if w == 0 {
		w = 1
	}
	t.stats.Histogram[w]++
	t.stats.Evicted++
}

// Stats drains the currently resident lines into the histogram and
// returns the totals. The tracker can keep being used afterwards; resident
// lines are only counted once per Stats call boundary semantics, so call
// it at the end of a run.
func (t *UtilizationTracker) Stats() UtilizationStats {
	out := UtilizationStats{Histogram: append([]uint64(nil), t.stats.Histogram...), Evicted: t.stats.Evicted}
	for i, v := range t.valid {
		if v {
			w := bits.OnesCount64(t.touched[i])
			if w == 0 {
				w = 1
			}
			out.Histogram[w]++
			out.Evicted++
		}
	}
	return out
}

// CacheStats exposes the shadow cache's hit/miss counters.
func (t *UtilizationTracker) CacheStats() Stats { return t.c.Stats() }
