package cachesim

import "testing"

func tinyHierarchy() *Hierarchy {
	return NewHierarchy(
		Config{Name: "L1", LineSize: 64, Sets: 2, Ways: 2, Policy: LRU},  // 256 B
		Config{Name: "L2", LineSize: 64, Sets: 8, Ways: 2, Policy: LRU},  // 1 KiB
		Config{Name: "L3", LineSize: 64, Sets: 16, Ways: 4, Policy: LRU}, // 4 KiB
	)
}

func TestHierarchyHitLevels(t *testing.T) {
	h := tinyHierarchy()
	if got := h.Access(0, false); got != 3 {
		t.Fatalf("cold access hit level %d, want memory (3)", got)
	}
	if got := h.Access(0, false); got != 0 {
		t.Fatalf("immediate reuse hit level %d, want L1 (0)", got)
	}
	// Evict line 0 from L1 by filling its set (L1 set count 2: lines 0
	// and 2 share set 0).
	h.Access(2*64, false)
	h.Access(4*64, false)
	h.Access(6*64, false)
	level := h.Access(0, false)
	if level == 0 {
		t.Fatal("line survived L1 eviction pressure")
	}
	if level >= 3 {
		t.Fatalf("line should still be in an outer level, hit %d", level)
	}
}

func TestHierarchyLevelCountsConsistent(t *testing.T) {
	h := tinyHierarchy()
	rng := newTestRNG(3)
	const n = 20000
	for i := 0; i < n; i++ {
		h.Access(uint64(rng.next()%512)*64, rng.next()%4 == 0)
	}
	l1 := h.LevelStats(0)
	l2 := h.LevelStats(1)
	l3 := h.LevelStats(2)
	if l1.Accesses != n {
		t.Errorf("L1 accesses = %d", l1.Accesses)
	}
	// Each level only sees the previous level's misses.
	if l2.Accesses != l1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d", l2.Accesses, l1.Misses)
	}
	if l3.Accesses != l2.Misses {
		t.Errorf("L3 accesses %d != L2 misses %d", l3.Accesses, l2.Misses)
	}
	if h.MemoryAccesses() != l3.Misses {
		t.Errorf("memory accesses %d != L3 misses %d", h.MemoryAccesses(), l3.Misses)
	}
	// Bigger caches miss less.
	if l3.MissRate() > l1.MissRate()+1e-9 && l3.Accesses > 1000 {
		t.Logf("note: L3 local miss rate %.3f above L1 %.3f (possible with filtered traffic)",
			l3.MissRate(), l1.MissRate())
	}
}

func TestHierarchyReset(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, false)
	h.Reset()
	for i := 0; i < h.Levels(); i++ {
		if h.LevelStats(i).Accesses != 0 {
			t.Fatalf("level %d not reset", i)
		}
	}
}

func TestHierarchyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty hierarchy did not panic")
		}
	}()
	NewHierarchy()
}

func TestSkylakeHierarchyGeometry(t *testing.T) {
	h := SkylakeHierarchy()
	if h.Levels() != 3 {
		t.Fatalf("levels = %d", h.Levels())
	}
	if h.levels[0].Config().SizeBytes() != 32*1024 {
		t.Errorf("L1D size = %d", h.levels[0].Config().SizeBytes())
	}
	if h.levels[1].Config().SizeBytes() != 1024*1024 {
		t.Errorf("L2 size = %d", h.levels[1].Config().SizeBytes())
	}
	if h.levels[2].Config().SizeBytes() != 22*1024*1024 {
		t.Errorf("L3 size = %d", h.levels[2].Config().SizeBytes())
	}
}

// The paper's implicit assumption: for random SpMV-like access streams,
// the private levels filter little — most L1 misses also miss L2.
func TestHierarchyRandomStreamBlowsThroughPrivateLevels(t *testing.T) {
	h := tinyHierarchy()
	rng := newTestRNG(11)
	// Random accesses over a footprint 64x the L3.
	for i := 0; i < 50000; i++ {
		h.Access(uint64(rng.next()%(16*1024))*64, false)
	}
	l1 := h.LevelStats(0)
	l2 := h.LevelStats(1)
	if l1.Misses == 0 {
		t.Fatal("no L1 misses?")
	}
	filter := 1 - float64(l2.Misses)/float64(l1.Misses)
	if filter > 0.25 {
		t.Errorf("private levels filtered %.0f%% of random traffic — too much", 100*filter)
	}
}
