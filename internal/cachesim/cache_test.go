package cachesim

import (
	"testing"
	"testing/quick"
)

func small(policy Policy, sets, ways int) *Cache {
	return New(Config{Name: "t", LineSize: 64, Sets: sets, Ways: ways, Policy: policy})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LineSize: 0, Sets: 1, Ways: 1},
		{LineSize: 48, Sets: 1, Ways: 1},
		{LineSize: 64, Sets: 3, Ways: 1},
		{LineSize: 64, Sets: 0, Ways: 1},
		{LineSize: 64, Sets: 4, Ways: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	good := Config{LineSize: 64, Sets: 8, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.SizeBytes() != 64*8*4 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{LineSize: 3, Sets: 1, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	for _, p := range []Policy{LRU, SRRIP, BRRIP, DRRIP} {
		c := small(p, 8, 2)
		if c.Access(0x1000, false) {
			t.Errorf("%v: cold access hit", p)
		}
		if !c.Access(0x1000, false) {
			t.Errorf("%v: second access missed", p)
		}
		if !c.Access(0x1010, false) {
			t.Errorf("%v: same-line access missed", p)
		}
		st := c.Stats()
		if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
			t.Errorf("%v: stats = %+v", p, st)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: three distinct lines mapping to the same set.
	c := small(LRU, 1, 2)
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should still be cached")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted")
	}
	if !c.Contains(d) {
		t.Error("d should be cached")
	}
}

func TestLRUStackProperty(t *testing.T) {
	// Under LRU with the same number of sets, a cache with more ways hits
	// at least as often on any trace (inclusion property).
	f := func(seed uint64) bool {
		rng := newTestRNG(seed)
		trace := make([]uint64, 2000)
		for i := range trace {
			trace[i] = uint64(rng.next()%64) * 64
		}
		var prevHits uint64
		for ways := 1; ways <= 8; ways *= 2 {
			c := small(LRU, 4, ways)
			for _, a := range trace {
				c.Access(a, false)
			}
			h := c.Stats().Hits
			if h < prevHits {
				return false
			}
			prevHits = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := small(LRU, 1, 1)
	c.Access(0, true)    // dirty
	c.Access(64, false)  // evicts dirty line -> writeback
	c.Access(128, false) // evicts clean line -> no writeback
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", st.Writebacks)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
	if st.WriteMiss != 1 || st.ReadMiss != 2 {
		t.Errorf("miss split = %+v", st)
	}
}

func TestBRRIPThrashResistance(t *testing.T) {
	// Cyclic access over a working set slightly larger than capacity:
	// LRU thrashes to ~0 hits; BRRIP retains a fraction of the set.
	const lines = 40 // capacity is 32 lines (16 sets x 2 ways)
	trace := func(c *Cache) uint64 {
		for round := 0; round < 50; round++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i)*64, false)
			}
		}
		return c.Stats().Hits
	}
	lru := trace(small(LRU, 16, 2))
	brrip := trace(small(BRRIP, 16, 2))
	if lru >= brrip {
		t.Errorf("BRRIP (%d hits) should beat LRU (%d hits) on a thrashing loop", brrip, lru)
	}
}

func TestSRRIPScanThenReuse(t *testing.T) {
	// A reused line should survive a one-shot scan under SRRIP.
	c := small(SRRIP, 1, 4)
	hot := uint64(0)
	for i := 0; i < 8; i++ {
		c.Access(hot, false) // promote to RRPV 0
	}
	// Scan three distinct lines (fills remaining ways at distant RRPV).
	c.Access(64, false)
	c.Access(128, false)
	c.Access(192, false)
	if !c.Access(hot, false) {
		t.Error("hot line evicted by scan under SRRIP")
	}
}

func TestDRRIPFollowsLeaders(t *testing.T) {
	// DRRIP must behave sanely and its hit count should be within the
	// envelope [min(SRRIP,BRRIP), max(SRRIP,BRRIP)] on a mixed trace --
	// approximately; we only require it not to be catastrophically worse.
	rng := newTestRNG(7)
	trace := make([]uint64, 20000)
	for i := range trace {
		if i%3 == 0 {
			trace[i] = uint64(rng.next()%16) * 64 // hot region
		} else {
			trace[i] = uint64(rng.next()%4096) * 64 // scan region
		}
	}
	run := func(p Policy) float64 {
		c := small(p, 64, 4)
		for _, a := range trace {
			c.Access(a, false)
		}
		return c.Stats().MissRate()
	}
	srrip, brrip, drrip := run(SRRIP), run(BRRIP), run(DRRIP)
	worst := srrip
	if brrip > worst {
		worst = brrip
	}
	if drrip > worst+0.05 {
		t.Errorf("DRRIP miss rate %.3f much worse than both SRRIP %.3f and BRRIP %.3f",
			drrip, srrip, brrip)
	}
}

func TestReset(t *testing.T) {
	c := small(DRRIP, 4, 2)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*64, false)
	}
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Error("stats not cleared")
	}
	if c.ValidLines() != 0 {
		t.Error("contents not cleared")
	}
	if c.Access(0, false) {
		t.Error("hit after reset")
	}
}

func TestSnapshot(t *testing.T) {
	c := small(LRU, 4, 2)
	addrs := []uint64{0, 64, 128, 192} // one line per set
	for _, a := range addrs {
		c.Access(a, false)
	}
	got := map[uint64]bool{}
	c.Snapshot(func(line uint64) { got[line] = true })
	if len(got) != len(addrs) {
		t.Fatalf("snapshot has %d lines, want %d", len(got), len(addrs))
	}
	for _, a := range addrs {
		if !got[a] {
			t.Errorf("snapshot missing line %#x", a)
		}
	}
	if c.ValidLines() != len(addrs) {
		t.Errorf("ValidLines = %d, want %d", c.ValidLines(), len(addrs))
	}
}

func TestSnapshotRoundTripsAddresses(t *testing.T) {
	// Reconstructed line addresses must map back to the same set/tag,
	// i.e. Contains must be true for every snapshotted address.
	f := func(seed uint64) bool {
		rng := newTestRNG(seed)
		c := small(DRRIP, 8, 2)
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.next())&0xFFFFF, rng.next()%2 == 0)
		}
		ok := true
		c.Snapshot(func(line uint64) {
			if !c.Contains(line) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: accounting identities hold for any policy and any trace.
func TestStatsIdentityProperty(t *testing.T) {
	f := func(seed uint64, policyRaw uint8) bool {
		p := Policy(policyRaw % 4)
		rng := newTestRNG(seed)
		c := small(p, 8, 2)
		n := 1000
		for i := 0; i < n; i++ {
			c.Access(uint64(rng.next())&0xFFFF, rng.next()%3 == 0)
		}
		st := c.Stats()
		if st.Accesses != uint64(n) || st.Hits+st.Misses != st.Accesses {
			return false
		}
		if st.ReadMiss+st.WriteMiss != st.Misses {
			return false
		}
		if c.ValidLines() > 8*2 {
			return false
		}
		// A miss either fills an empty line or evicts: misses =
		// evictions + currently valid lines.
		return st.Misses == st.Evictions+uint64(c.ValidLines())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNextLinePrefetchSequentialScan(t *testing.T) {
	// A sequential line-by-line scan misses every line without the
	// prefetcher and roughly half the lines with it (each miss pulls in
	// the next line).
	run := func(prefetch bool) Stats {
		c := New(Config{Name: "t", LineSize: 64, Sets: 64, Ways: 4,
			Policy: LRU, NextLinePrefetch: prefetch})
		for i := uint64(0); i < 10000; i++ {
			c.Access(i*64, false)
		}
		return c.Stats()
	}
	off := run(false)
	on := run(true)
	if off.Misses != 10000 {
		t.Fatalf("cold scan misses = %d, want 10000", off.Misses)
	}
	if on.Misses != 5000 {
		t.Errorf("prefetched scan misses = %d, want 5000", on.Misses)
	}
	if on.Prefetches == 0 {
		t.Error("no prefetches counted")
	}
}

func TestPrefetchDoesNotDuplicateLines(t *testing.T) {
	c := New(Config{Name: "t", LineSize: 64, Sets: 4, Ways: 2,
		Policy: SRRIP, NextLinePrefetch: true})
	// Touch line 0 (prefetches line 1), then line 1: must hit, and line 1
	// must exist exactly once.
	c.Access(0, false)
	if !c.Access(64, false) {
		t.Error("prefetched line missed")
	}
	count := 0
	c.Snapshot(func(addr uint64) {
		if addr == 64 {
			count++
		}
	})
	if count != 1 {
		t.Errorf("line 64 present %d times", count)
	}
}

func TestPrefetchRandomAccessesNeutralish(t *testing.T) {
	// On a random stream the prefetcher must not help much (and must not
	// catastrophically hurt): its cold insertions are evicted first.
	run := func(prefetch bool) float64 {
		c := New(Config{Name: "t", LineSize: 64, Sets: 64, Ways: 4,
			Policy: DRRIP, NextLinePrefetch: prefetch})
		rng := newTestRNG(3)
		for i := 0; i < 100000; i++ {
			c.Access(uint64(rng.next()%65536)*64, false)
		}
		return c.Stats().MissRate()
	}
	off, on := run(false), run(true)
	if on > off*1.15 {
		t.Errorf("prefetcher hurt random stream: %.3f vs %.3f", on, off)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("MissRate of zero stats should be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "LRU", SRRIP: "SRRIP", BRRIP: "BRRIP", DRRIP: "DRRIP"} {
		if p.String() != want {
			t.Errorf("String(%d) = %q", int(p), p.String())
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should still stringify")
	}
}

// newTestRNG gives the package its own tiny deterministic generator so
// tests do not depend on math/rand stream stability.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed*2654435761 + 1} }

func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
