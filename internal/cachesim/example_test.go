package cachesim_test

import (
	"fmt"

	"graphlocality/internal/cachesim"
)

func ExampleCache() {
	c := cachesim.New(cachesim.Config{
		Name: "toy", LineSize: 64, Sets: 4, Ways: 2, Policy: cachesim.LRU,
	})
	fmt.Println("first touch hit:", c.Access(0x1000, false))
	fmt.Println("reuse hit:      ", c.Access(0x1000, false))
	fmt.Println("same line hit:  ", c.Access(0x1020, false))
	st := c.Stats()
	fmt.Printf("miss rate: %.2f\n", st.MissRate())
	// Output:
	// first touch hit: false
	// reuse hit:       true
	// same line hit:   true
	// miss rate: 0.33
}

func ExampleNewTLB() {
	tlb := cachesim.NewTLB(cachesim.TLBConfig{PageSize: 4096, Entries: 16, Ways: 4})
	tlb.Access(0)
	fmt.Println("same page:", tlb.Access(100))
	fmt.Println("new page: ", tlb.Access(8192))
	// Output:
	// same page: true
	// new page:  false
}

func ExampleHierarchy() {
	h := cachesim.NewHierarchy(
		cachesim.Config{Name: "L1", LineSize: 64, Sets: 2, Ways: 2, Policy: cachesim.LRU},
		cachesim.Config{Name: "L2", LineSize: 64, Sets: 16, Ways: 4, Policy: cachesim.LRU},
	)
	fmt.Println("cold access serviced by level:", h.Access(0, false))
	fmt.Println("warm access serviced by level:", h.Access(0, false))
	// Output:
	// cold access serviced by level: 2
	// warm access serviced by level: 0
}
