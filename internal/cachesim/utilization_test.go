package cachesim

import "testing"

func TestUtilizationSingleWord(t *testing.T) {
	// Touch one word per line over many lines: utilization 1 word/line.
	tr := NewUtilizationTracker(Config{Name: "t", LineSize: 64, Sets: 4, Ways: 2, Policy: LRU})
	for i := uint64(0); i < 100; i++ {
		tr.Access(i*64, false)
	}
	st := tr.Stats()
	if st.Evicted != 100 {
		t.Fatalf("accounted %d lines, want 100", st.Evicted)
	}
	if st.MeanWords() != 1 {
		t.Errorf("MeanWords = %v, want 1", st.MeanWords())
	}
	if st.MeanFraction() != 1.0/8 {
		t.Errorf("MeanFraction = %v, want 0.125", st.MeanFraction())
	}
}

func TestUtilizationFullLine(t *testing.T) {
	// Touch all 8 words of each line before moving on.
	tr := NewUtilizationTracker(Config{Name: "t", LineSize: 64, Sets: 4, Ways: 2, Policy: LRU})
	for i := uint64(0); i < 50; i++ {
		for w := uint64(0); w < 8; w++ {
			tr.Access(i*64+w*8, false)
		}
	}
	st := tr.Stats()
	if st.MeanWords() != 8 {
		t.Errorf("MeanWords = %v, want 8", st.MeanWords())
	}
	if st.MeanFraction() != 1 {
		t.Errorf("MeanFraction = %v, want 1", st.MeanFraction())
	}
}

func TestUtilizationHitMissAgreesWithPlainCache(t *testing.T) {
	cfg := Config{Name: "t", LineSize: 64, Sets: 8, Ways: 2, Policy: DRRIP}
	tr := NewUtilizationTracker(cfg)
	plain := New(cfg)
	rng := newTestRNG(5)
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.next()) & 0xFFFF
		write := rng.next()%3 == 0
		if tr.Access(addr, write) != plain.Access(addr, write) {
			t.Fatalf("tracker diverged from plain cache at access %d", i)
		}
	}
	if tr.CacheStats() != plain.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", tr.CacheStats(), plain.Stats())
	}
	st := tr.Stats()
	var total uint64
	for _, c := range st.Histogram {
		total += c
	}
	if total != st.Evicted {
		t.Errorf("histogram total %d != evicted %d", total, st.Evicted)
	}
}

func TestUtilizationPanicsOnHugeLines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1KiB lines should panic")
		}
	}()
	NewUtilizationTracker(Config{Name: "t", LineSize: 1024, Sets: 2, Ways: 1, Policy: LRU})
}

func TestUtilizationEmpty(t *testing.T) {
	tr := NewUtilizationTracker(Config{Name: "t", LineSize: 64, Sets: 2, Ways: 1, Policy: LRU})
	st := tr.Stats()
	if st.MeanWords() != 0 || st.Evicted != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	var u UtilizationStats
	if u.MeanFraction() != 0 {
		t.Error("zero-value MeanFraction should be 0")
	}
}
