package cachesim

import (
	"fmt"
	"testing"
)

// FuzzBatchedVsScalar feeds arbitrary access streams through AccessBatch
// and the scalar Access path under a fuzzer-chosen geometry and batch cut,
// and requires bit-identical per-access results and final state. The fuzzer
// owns the address distribution, so it explores corners the differential
// suite's structured streams never reach: pathological set aliasing,
// tag patterns adjacent to the invalidTag sentinel, single-way sets,
// batch cuts of every phase relative to the stream.
//
// cfgSel picks geometry and policy; blockSel the batch size; data encodes
// the stream, 3 bytes per access (16-bit line index + write bit), keeping
// the addresses in a window small enough to keep the cache contended.
// FuzzShardedMergeVsSingle feeds arbitrary access streams through a
// Sharded cache at a fuzzer-chosen shard count and requires:
//
//   - for the per-set policies (LRU, SRRIP): per-access results and merged
//     Stats bit-identical to the single Cache of the same global geometry
//     (the exactness half of the sharding model, prefetch included);
//   - for every policy: the serial batch driver and the parallel
//     per-shard driver bit-identical to per-access routing — same hits,
//     same final state in every shard (the determinism half).
//
// The fuzzer owns the addresses, shard count, and batch cut, so it reaches
// set/shard aliasing corners (single-set shards, prefetches that cross the
// shard interleave, streams confined to one shard) that the structured
// tests never construct.
func FuzzShardedMergeVsSingle(f *testing.F) {
	f.Add(uint8(0x00), uint8(0), uint8(1), []byte{0, 0, 0})
	f.Add(uint8(0x1b), uint8(2), uint8(3), []byte{
		0, 0, 0, 0, 0, 1, 0, 1, 0, 0xff, 0xff, 1, 0, 0, 0,
	})
	f.Add(uint8(0x5f), uint8(0x83), uint8(0), []byte{
		1, 2, 0, 3, 4, 1, 5, 6, 0, 7, 8, 1, 1, 2, 0, 9, 10, 0,
	})
	f.Add(uint8(0xc7), uint8(1), uint8(255), []byte{
		0x40, 0, 0, 0x40, 1, 0, 0x40, 2, 0, 0x40, 3, 1, 0x40, 0, 0,
	})

	f.Fuzz(func(t *testing.T, cfgSel, shardSel, blockSel uint8, data []byte) {
		cfg := Config{
			LineSize:         64,
			Sets:             1 << (cfgSel & 0x7),       // 1..128 sets
			Ways:             1 + int(cfgSel>>3&0x7),    // 1..8 ways
			Policy:           Policy(cfgSel >> 6 & 0x3), // LRU..DRRIP
			NextLinePrefetch: shardSel>>7 == 1,
		}
		shards := 1 << (shardSel & 0x3) // 1..8 shards
		if shards > cfg.Sets {
			shards = cfg.Sets
		}
		blockSize := 1 + int(blockSel)%64

		n := len(data) / 3
		if n == 0 {
			return
		}
		addrs := make([]uint64, n)
		writes := make([]bool, n)
		for i := 0; i < n; i++ {
			line := uint64(data[3*i])<<8 | uint64(data[3*i+1])
			addrs[i] = line << 6
			writes[i] = data[3*i+2]&1 == 1
		}

		name := fmt.Sprintf("cfg=%+v shards=%d bs=%d", cfg, shards, blockSize)
		scalar := NewSharded(cfg, shards)
		single := New(cfg)
		perSet := cfg.Policy == LRU || cfg.Policy == SRRIP
		scalarHits := make([]bool, n)
		for i := 0; i < n; i++ {
			scalarHits[i] = scalar.Access(addrs[i], writes[i])
			if perSet {
				if want := single.Access(addrs[i], writes[i]); scalarHits[i] != want {
					t.Fatalf("%s: access %d (addr %#x): sharded hit=%v, single hit=%v",
						name, i, addrs[i], scalarHits[i], want)
				}
			}
		}
		if perSet && scalar.Stats() != single.Stats() {
			t.Fatalf("%s: merged sharded stats = %+v, single stats = %+v",
				name, scalar.Stats(), single.Stats())
		}

		batched := NewSharded(cfg, shards)
		parallel := NewSharded(cfg, shards)
		batchHits := make([]bool, n)
		parHits := make([]bool, n)
		for lo := 0; lo < n; lo += blockSize {
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			batched.AccessBatch(addrs[lo:hi], writes[lo:hi], batchHits[lo:hi])
			parallel.AccessBatchParallel(addrs[lo:hi], writes[lo:hi], parHits[lo:hi])
		}
		for i := 0; i < n; i++ {
			if batchHits[i] != scalarHits[i] {
				t.Fatalf("%s: access %d: AccessBatch hit=%v, scalar hit=%v", name, i, batchHits[i], scalarHits[i])
			}
			if parHits[i] != scalarHits[i] {
				t.Fatalf("%s: access %d: AccessBatchParallel hit=%v, scalar hit=%v", name, i, parHits[i], scalarHits[i])
			}
		}
		for s := 0; s < shards; s++ {
			assertSameState(t, fmt.Sprintf("%s batch shard %d", name, s), scalar.Shard(s), batched.Shard(s))
			assertSameState(t, fmt.Sprintf("%s parallel shard %d", name, s), scalar.Shard(s), parallel.Shard(s))
		}
	})
}

func FuzzBatchedVsScalar(f *testing.F) {
	f.Add(uint8(0x00), uint8(1), []byte{0, 0, 0})
	f.Add(uint8(0x1b), uint8(3), []byte{
		0, 0, 0, 0, 0, 1, 0, 1, 0, 0xff, 0xff, 1, 0, 0, 0,
	})
	f.Add(uint8(0x2f), uint8(0), []byte{
		1, 2, 0, 3, 4, 1, 5, 6, 0, 7, 8, 1, 1, 2, 0, 9, 10, 0,
	})
	f.Add(uint8(0x37), uint8(255), []byte{
		0x40, 0, 0, 0x40, 1, 0, 0x40, 2, 0, 0x40, 3, 1, 0x40, 0, 0,
	})

	f.Fuzz(func(t *testing.T, cfgSel, blockSel uint8, data []byte) {
		cfg := Config{
			LineSize:         64,
			Sets:             1 << (cfgSel & 0x3),       // 1..8 sets
			Ways:             1 + int(cfgSel>>2&0x7),    // 1..8 ways
			Policy:           Policy(cfgSel >> 5 & 0x3), // LRU..DRRIP
			NextLinePrefetch: cfgSel>>7 == 1,
		}
		blockSize := 1 + int(blockSel)%64

		n := len(data) / 3
		if n == 0 {
			return
		}
		addrs := make([]uint64, n)
		writes := make([]bool, n)
		for i := 0; i < n; i++ {
			line := uint64(data[3*i])<<8 | uint64(data[3*i+1])
			addrs[i] = line << 6
			writes[i] = data[3*i+2]&1 == 1
		}

		scalar, batched := New(cfg), New(cfg)
		hits := make([]bool, blockSize)
		for lo := 0; lo < n; lo += blockSize {
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			batched.AccessBatch(addrs[lo:hi], writes[lo:hi], hits[:hi-lo])
			for i := lo; i < hi; i++ {
				if want := scalar.Access(addrs[i], writes[i]); hits[i-lo] != want {
					t.Fatalf("cfg=%+v bs=%d: access %d (addr %#x, write %v): batched hit=%v, scalar hit=%v",
						cfg, blockSize, i, addrs[i], writes[i], hits[i-lo], want)
				}
			}
		}
		assertSameState(t, fmt.Sprintf("cfg=%+v bs=%d", cfg, blockSize), scalar, batched)
	})
}
