package cachesim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// streamGen is a tiny deterministic stream generator for the sharded
// differential tests: a mix of sequential runs (prefetch-friendly) and
// splitmix-scattered lines confined to a window that keeps every set
// contended.
func streamGen(n int, lineWindow uint64, seed uint64) ([]uint64, []bool) {
	addrs := make([]uint64, n)
	writes := make([]bool, n)
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		r := next()
		line := r % lineWindow
		if r&0x7 == 0 {
			// Short sequential run.
			for k := 0; k < 8 && i < n; k++ {
				addrs[i] = (line + uint64(k)) << 6
				writes[i] = r>>8&1 == 1
				i++
			}
			i--
			continue
		}
		addrs[i] = line << 6
		writes[i] = r>>9&1 == 1
	}
	return addrs, writes
}

// assertShardStates compares every shard of two Sharded caches field by
// field.
func assertShardStates(t *testing.T, name string, want, got *Sharded) {
	t.Helper()
	if want.Shards() != got.Shards() {
		t.Fatalf("%s: shard counts differ", name)
	}
	for i := 0; i < want.Shards(); i++ {
		assertSameState(t, fmt.Sprintf("%s/shard%d", name, i), want.Shard(i), got.Shard(i))
	}
}

// TestShardedMatchesSingle pins the exactness half of the sharding model:
// for the per-set policies (LRU, SRRIP), a Sharded cache at any shard count
// — with or without next-line prefetch — produces per-access results,
// merged statistics, valid-line counts and snapshot contents identical to
// the single Cache of the same global geometry.
func TestShardedMatchesSingle(t *testing.T) {
	cfg := Config{LineSize: 64, Sets: 64, Ways: 4}
	addrs, writes := streamGen(20000, 4096, 7)
	for _, pol := range []Policy{LRU, SRRIP} {
		for _, prefetch := range []bool{false, true} {
			for _, shards := range []int{1, 2, 8, 64} {
				c := cfg
				c.Policy = pol
				c.NextLinePrefetch = prefetch
				name := fmt.Sprintf("%s/prefetch=%v/shards=%d", pol, prefetch, shards)
				single := New(c)
				sharded := NewSharded(c, shards)
				for i, addr := range addrs {
					want := single.Access(addr, writes[i])
					got := sharded.Access(addr, writes[i])
					if want != got {
						t.Fatalf("%s: access %d (addr %#x): single hit=%v sharded hit=%v", name, i, addr, want, got)
					}
				}
				if single.Stats() != sharded.Stats() {
					t.Fatalf("%s: merged stats = %+v, want %+v", name, sharded.Stats(), single.Stats())
				}
				if single.ValidLines() != sharded.ValidLines() {
					t.Fatalf("%s: valid lines = %d, want %d", name, sharded.ValidLines(), single.ValidLines())
				}
				var wantLines, gotLines []uint64
				single.Snapshot(func(a uint64) { wantLines = append(wantLines, a) })
				sharded.Snapshot(func(a uint64) { gotLines = append(gotLines, a) })
				sort.Slice(wantLines, func(i, j int) bool { return wantLines[i] < wantLines[j] })
				sort.Slice(gotLines, func(i, j int) bool { return gotLines[i] < gotLines[j] })
				if !reflect.DeepEqual(wantLines, gotLines) {
					t.Fatalf("%s: snapshot contents diverge", name)
				}
				for _, addr := range addrs[:64] {
					if single.Contains(addr) != sharded.Contains(addr) {
						t.Fatalf("%s: Contains(%#x) diverges", name, addr)
					}
				}
			}
		}
	}
}

// TestShardedBatchMatchesScalar holds the three driving modes of one
// Sharded cache together across all four policies: per-access Access,
// AccessBatch at an awkward cut, and AccessBatchParallel must produce
// identical per-access hits and identical final state in every shard.
func TestShardedBatchMatchesScalar(t *testing.T) {
	cfg := Config{LineSize: 64, Sets: 32, Ways: 4}
	addrs, writes := streamGen(12000, 1024, 11)
	for _, pol := range []Policy{LRU, SRRIP, BRRIP, DRRIP} {
		for _, prefetch := range []bool{false, true} {
			for _, shards := range []int{1, 4} {
				c := cfg
				c.Policy = pol
				c.NextLinePrefetch = prefetch
				name := fmt.Sprintf("%s/prefetch=%v/shards=%d", pol, prefetch, shards)
				scalar := NewSharded(c, shards)
				batched := NewSharded(c, shards)
				parallel := NewSharded(c, shards)

				scalarHits := make([]bool, len(addrs))
				for i, addr := range addrs {
					scalarHits[i] = scalar.Access(addr, writes[i])
				}
				const cut = 977
				batchHits := make([]bool, len(addrs))
				parHits := make([]bool, len(addrs))
				for lo := 0; lo < len(addrs); lo += cut {
					hi := lo + cut
					if hi > len(addrs) {
						hi = len(addrs)
					}
					batched.AccessBatch(addrs[lo:hi], writes[lo:hi], batchHits[lo:hi])
					parallel.AccessBatchParallel(addrs[lo:hi], writes[lo:hi], parHits[lo:hi])
				}
				if !reflect.DeepEqual(scalarHits, batchHits) {
					t.Fatalf("%s: AccessBatch hits diverge from scalar", name)
				}
				if !reflect.DeepEqual(scalarHits, parHits) {
					t.Fatalf("%s: AccessBatchParallel hits diverge from scalar", name)
				}
				assertShardStates(t, name+"/batch", scalar, batched)
				assertShardStates(t, name+"/parallel", scalar, parallel)
			}
		}
	}
}

// TestShardedParallelDeterminism runs the parallel driver repeatedly for
// the globally-stateful policies (BRRIP, DRRIP — the NUMA-slice model) and
// requires identical stats and state every time: results may depend on the
// stream and geometry, never on goroutine scheduling.
func TestShardedParallelDeterminism(t *testing.T) {
	addrs, writes := streamGen(16000, 2048, 3)
	for _, pol := range []Policy{BRRIP, DRRIP} {
		cfg := Config{LineSize: 64, Sets: 64, Ways: 8, Policy: pol}
		ref := NewSharded(cfg, 8)
		ref.AccessBatchParallel(addrs, writes, nil)
		for rep := 0; rep < 3; rep++ {
			got := NewSharded(cfg, 8)
			got.AccessBatchParallel(addrs, writes, nil)
			if ref.Stats() != got.Stats() {
				t.Fatalf("%s rep %d: stats nondeterministic: %+v vs %+v", pol, rep, got.Stats(), ref.Stats())
			}
			assertShardStates(t, fmt.Sprintf("%s/rep%d", pol, rep), ref, got)
		}
	}
}

// TestNewShardedValidation pins the constructor contract.
func TestNewShardedValidation(t *testing.T) {
	cfg := Config{LineSize: 64, Sets: 16, Ways: 2}
	for _, bad := range []int{0, -1, 3, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(shards=%d): want panic", bad)
				}
			}()
			NewSharded(cfg, bad)
		}()
	}
	if got := NewSharded(cfg, 16).Shards(); got != 16 {
		t.Errorf("shards = %d, want 16", got)
	}
}

// TestShardedReset verifies Reset returns every shard to the fresh state.
func TestShardedReset(t *testing.T) {
	cfg := Config{LineSize: 64, Sets: 16, Ways: 2, Policy: DRRIP}
	s := NewSharded(cfg, 4)
	addrs, writes := streamGen(4000, 512, 5)
	s.AccessBatch(addrs, writes, nil)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %+v", s.Stats())
	}
	if s.ValidLines() != 0 {
		t.Fatalf("valid lines after reset: %d", s.ValidLines())
	}
}

// TestShardedHierarchyNUMA exercises the NUMA mode: per-node private
// levels filter the stream the shared sharded LLC sees; a single-node,
// no-private-level hierarchy degenerates to the bare Sharded cache.
func TestShardedHierarchyNUMA(t *testing.T) {
	llcCfg := Config{Name: "LLC", LineSize: 64, Sets: 64, Ways: 4, Policy: LRU}

	// Degenerate case: no private levels, one node, one shard == Cache.
	h := NewShardedHierarchy(1, nil, llcCfg, 1)
	single := New(llcCfg)
	addrs, writes := streamGen(8000, 2048, 9)
	for i, addr := range addrs {
		wantHit := single.Access(addr, writes[i])
		lvl := h.Access(0, addr, writes[i])
		gotHit := lvl == 0 // PrivateLevels()==0, so 0 means LLC hit
		if wantHit != gotHit {
			t.Fatalf("access %d: single hit=%v hierarchy level=%d", i, wantHit, lvl)
		}
	}
	if single.Stats() != h.LLC().Stats() {
		t.Fatalf("LLC stats = %+v, want %+v", h.LLC().Stats(), single.Stats())
	}
	if h.MemoryAccesses() != single.Stats().Misses {
		t.Fatalf("memory accesses = %d, want %d", h.MemoryAccesses(), single.Stats().Misses)
	}

	// Two-node Skylake: private levels absorb reuse, levels stay in range,
	// node attribution drives distinct private caches.
	sky := SkylakeNUMA(2)
	if sky.Nodes() != 2 || sky.PrivateLevels() != 2 || sky.LLC().Shards() != 2 {
		t.Fatalf("SkylakeNUMA(2) topology: nodes=%d private=%d shards=%d",
			sky.Nodes(), sky.PrivateLevels(), sky.LLC().Shards())
	}
	for i, addr := range addrs {
		node := i & 1
		lvl := sky.Access(node, addr, writes[i])
		if lvl < 0 || lvl > 3 {
			t.Fatalf("access %d: level %d out of range", i, lvl)
		}
	}
	var privAccesses uint64
	for n := 0; n < 2; n++ {
		privAccesses += sky.PrivateStats(n, 0).Accesses
	}
	if privAccesses != uint64(len(addrs)) {
		t.Fatalf("L1 accesses across nodes = %d, want %d", privAccesses, len(addrs))
	}
	// The LLC only sees what both private levels missed.
	if llc := sky.LLC().Stats().Accesses; llc >= uint64(len(addrs)) {
		t.Fatalf("LLC saw %d accesses, private levels filtered nothing", llc)
	}
	// Determinism across a replay after Reset.
	before := sky.LLC().Stats()
	sky.Reset()
	for i, addr := range addrs {
		sky.Access(i&1, addr, writes[i])
	}
	if sky.LLC().Stats() != before {
		t.Fatalf("replay after Reset diverged: %+v vs %+v", sky.LLC().Stats(), before)
	}

	// SkylakeNUMA rounds non-power-of-two node counts down for the LLC.
	if got := SkylakeNUMA(3).LLC().Shards(); got != 2 {
		t.Fatalf("SkylakeNUMA(3) shards = %d, want 2", got)
	}
}
