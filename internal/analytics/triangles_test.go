package analytics

import (
	"testing"
	"testing/quick"

	"graphlocality/internal/gen"
	"graphlocality/internal/graph"
)

func TestTriangleCountKnownGraphs(t *testing.T) {
	// A triangle.
	tri := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	if got := TriangleCount(tri); got != 1 {
		t.Errorf("triangle: %d, want 1", got)
	}
	// K4 has 4 triangles.
	edges := []graph.Edge{}
	for i := uint32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{Src: i, Dst: j})
		}
	}
	if got := TriangleCount(graph.FromEdges(4, edges)); got != 4 {
		t.Errorf("K4: %d, want 4", got)
	}
	// A path has none.
	if got := TriangleCount(gen.Ring(2)); got != 0 {
		t.Errorf("2-ring: %d, want 0", got)
	}
	// Ring of length >= 4 has none; ring of 3 is a triangle.
	if got := TriangleCount(gen.Ring(5)); got != 0 {
		t.Errorf("5-ring: %d, want 0", got)
	}
	if got := TriangleCount(gen.Ring(3)); got != 1 {
		t.Errorf("3-ring: %d, want 1", got)
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(seed%30 + 3)
		g := gen.ErdosRenyi(n, int(seed%120), seed)
		return TriangleCount(g) == bruteForceTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func bruteForceTriangles(g *graph.Graph) uint64 {
	und := g.Undirected()
	n := und.NumVertices()
	adj := func(a, b uint32) bool { return und.HasEdge(a, b) }
	var c uint64
	for a := uint32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !adj(a, b) {
				continue
			}
			for x := b + 1; x < n; x++ {
				if adj(a, x) && adj(b, x) {
					c++
				}
			}
		}
	}
	return c
}

func TestClusteringCoefficient(t *testing.T) {
	tri := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	if got := ClusteringCoefficient(tri); got != 1 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	if ClusteringCoefficient(gen.Ring(6)) != 0 {
		t.Error("ring clustering should be 0")
	}
	if ClusteringCoefficient(graph.FromEdges(2, nil)) != 0 {
		t.Error("edgeless clustering should be 0")
	}
	// Social networks cluster far more than uniform graphs.
	social := ClusteringCoefficient(gen.SocialNetwork(11, 8, 5))
	uniform := ClusteringCoefficient(gen.ErdosRenyi(2048, 16000, 5))
	if social <= uniform {
		t.Errorf("social clustering %.4f not above uniform %.4f", social, uniform)
	}
}
