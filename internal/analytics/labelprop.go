package analytics

import "graphlocality/internal/graph"

// CommunityResult is a label-propagation community assignment.
type CommunityResult struct {
	Label       []uint32
	Iterations  int
	Communities int
}

// LabelPropagation runs synchronous majority label propagation (Zhu &
// Ghahramani, paper ref. [38]) over the undirected view: every vertex
// adopts the most frequent label among its neighbours, ties broken toward
// the smallest label; the process stops at a fixed point or maxIters.
// Community detection is one of the SpMV-shaped analytics of §II-B and a
// structural cousin of Rabbit-Order's clustering.
func LabelPropagation(g *graph.Graph, maxIters int) CommunityResult {
	und := g.Undirected()
	n := und.NumVertices()
	label := make([]uint32, n)
	for i := range label {
		label[i] = uint32(i)
	}
	res := CommunityResult{Label: label}
	counts := make(map[uint32]int, 16)
	for it := 0; it < maxIters; it++ {
		res.Iterations++
		changed := false
		next := make([]uint32, n)
		for v := uint32(0); v < n; v++ {
			nbrs := und.OutNeighbors(v)
			if len(nbrs) == 0 {
				next[v] = label[v]
				continue
			}
			clear(counts)
			for _, u := range nbrs {
				counts[label[u]]++
			}
			best := label[v]
			bestCount := counts[best] // current label wins ties
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			next[v] = best
			if best != label[v] {
				changed = true
			}
		}
		copy(label, next)
		if !changed {
			break
		}
	}
	seen := make(map[uint32]struct{})
	for _, l := range label {
		seen[l] = struct{}{}
	}
	res.Communities = len(seen)
	return res
}
