package analytics

import (
	"math"
	"testing"
	"testing/quick"

	"graphlocality/internal/gen"
	"graphlocality/internal/graph"
)

// ------------------------------------------------------------------ BFS

func TestBFSChain(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	res := BFS(g, 0)
	want := []uint32{0, 1, 2, 3, NotReached}
	for v, d := range res.Depth {
		if d != want[v] {
			t.Errorf("Depth[%d] = %d, want %d", v, d, want[v])
		}
	}
	if res.Parent[0] != graph.NoVertex {
		t.Error("source should have no parent")
	}
	if res.Parent[2] != 1 {
		t.Errorf("Parent[2] = %d", res.Parent[2])
	}
	if res.Reached() != 4 {
		t.Errorf("Reached = %d", res.Reached())
	}
}

func TestBFSMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(seed%150 + 2)
		g := gen.ErdosRenyi(n, int(seed%600), seed)
		src := uint32(seed % uint64(n))
		got := BFS(g, src)
		want := referenceBFS(g, src)
		for v := range want {
			if got.Depth[v] != want[v] {
				return false
			}
		}
		// Parents must be consistent with depths.
		for v, p := range got.Parent {
			if p == graph.NoVertex {
				continue
			}
			if got.Depth[v] != got.Depth[p]+1 || !g.HasEdge(p, uint32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// referenceBFS is a plain queue BFS over out-edges.
func referenceBFS(g *graph.Graph, src uint32) []uint32 {
	depth := make([]uint32, g.NumVertices())
	for i := range depth {
		depth[i] = NotReached
	}
	depth[src] = 0
	q := []uint32{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.OutNeighbors(v) {
			if depth[u] == NotReached {
				depth[u] = depth[v] + 1
				q = append(q, u)
			}
		}
	}
	return depth
}

func TestBFSUsesBothDirections(t *testing.T) {
	// A social-style graph with a giant component triggers the bottom-up
	// switch once the frontier explodes.
	g := gen.SocialNetwork(12, 16, 5)
	res := BFS(g, 0)
	if res.PushSteps == 0 {
		t.Error("no top-down steps")
	}
	if res.PullSteps == 0 {
		t.Error("direction-optimizing BFS never switched to bottom-up on a social graph")
	}
	if res.PushSteps+res.PullSteps != res.Iterations {
		t.Error("step accounting inconsistent")
	}
}

func TestBFSEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	res := BFS(g, 0)
	if len(res.Depth) != 0 {
		t.Error("empty graph should yield empty result")
	}
}

// ------------------------------------------------------------------- CC

func TestCCMatchesGraphComponents(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(seed%120 + 1)
		g := gen.ErdosRenyi(n, int(seed%400), seed)
		wantLabels, wantK := g.ConnectedComponents()
		lp := ConnectedComponentsLP(g)
		th := ThriftyCC(g)
		if lp.Components != wantK || th.Components != wantK {
			return false
		}
		// Same partition: two vertices share a label iff the reference
		// agrees.
		for v := uint32(1); v < n; v++ {
			if (lp.Label[v] == lp.Label[0]) != (wantLabels[v] == wantLabels[0]) {
				return false
			}
			if (th.Label[v] == th.Label[0]) != (wantLabels[v] == wantLabels[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCCLabelsAreCanonical(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{Src: 5, Dst: 4}, {Src: 4, Dst: 3}, {Src: 1, Dst: 0}})
	for _, res := range []CCResult{ConnectedComponentsLP(g), ThriftyCC(g)} {
		// Component {3,4,5} labels 3; {0,1} labels 0; {2} labels 2.
		if res.Label[5] != 3 || res.Label[1] != 0 || res.Label[2] != 2 {
			t.Errorf("labels = %v", res.Label)
		}
	}
}

func TestThriftyCCOnSkewedGraph(t *testing.T) {
	g := gen.SocialNetwork(12, 12, 9)
	lp := ConnectedComponentsLP(g)
	th := ThriftyCC(g)
	if lp.Components != th.Components {
		t.Errorf("component counts differ: LP %d vs Thrifty %d", lp.Components, th.Components)
	}
}

// ----------------------------------------------------------------- SSSP

func TestSSSPUnitWeightsEqualsBFS(t *testing.T) {
	g := gen.ErdosRenyi(300, 1500, 4)
	bfs := BFS(g, 7)
	sssp := SSSP(g, 7, UnitWeights)
	for v := range bfs.Depth {
		bd, sd := bfs.Depth[v], sssp.Dist[v]
		if bd == NotReached {
			if sd != Unreachable {
				t.Fatalf("vertex %d: BFS unreached but SSSP %d", v, sd)
			}
			continue
		}
		if uint64(bd) != sd {
			t.Fatalf("vertex %d: BFS depth %d != SSSP dist %d", v, bd, sd)
		}
	}
}

func TestSSSPMatchesBellmanFordReference(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(seed%80 + 2)
		g := gen.ErdosRenyi(n, int(seed%300), seed)
		w := HashWeights(9)
		src := uint32(seed % uint64(n))
		got := SSSP(g, src, w)
		want := referenceBellmanFord(g, src, w)
		for v := range want {
			if got.Dist[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func referenceBellmanFord(g *graph.Graph, src uint32, w WeightFunc) []uint64 {
	n := g.NumVertices()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	for i := uint32(0); i < n; i++ {
		changed := false
		for v := uint32(0); v < n; v++ {
			if dist[v] == Unreachable {
				continue
			}
			for _, u := range g.OutNeighbors(v) {
				if nd := dist[v] + uint64(w(v, u)); nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestHashWeightsDeterministicAndBounded(t *testing.T) {
	w := HashWeights(16)
	for u := uint32(0); u < 50; u++ {
		for v := uint32(0); v < 50; v++ {
			x := w(u, v)
			if x < 1 || x > 16 {
				t.Fatalf("weight %d out of [1,16]", x)
			}
			if x != w(u, v) {
				t.Fatal("weight not deterministic")
			}
		}
	}
}

// ----------------------------------------------------------------- HITS

func TestHITSAuthoritiesOnStar(t *testing.T) {
	g := gen.Star(200) // all leaves point to vertex 0
	res := HITS(g, 20)
	for v := 1; v < 200; v++ {
		if res.Authority[0] <= res.Authority[v] {
			t.Fatalf("centre authority %v not above leaf %v", res.Authority[0], res.Authority[v])
		}
		if res.Hub[v] <= res.Hub[0] {
			t.Fatalf("leaf hub score %v not above centre %v", res.Hub[v], res.Hub[0])
		}
	}
}

func TestHITSNormalized(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 6)
	res := HITS(g, 10)
	var a, h float64
	for v := range res.Authority {
		a += res.Authority[v] * res.Authority[v]
		h += res.Hub[v] * res.Hub[v]
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(h-1) > 1e-9 {
		t.Errorf("norms = %v, %v, want 1", a, h)
	}
	if HITS(graph.FromEdges(0, nil), 3).Iterations != 0 {
		t.Error("empty graph should not iterate")
	}
}

// ----------------------------------------------------- label propagation

func TestLabelPropagationTwoCliques(t *testing.T) {
	edges := []graph.Edge{}
	clique := func(lo uint32) {
		for i := lo; i < lo+8; i++ {
			for j := lo; j < lo+8; j++ {
				if i != j {
					edges = append(edges, graph.Edge{Src: i, Dst: j})
				}
			}
		}
	}
	clique(0)
	clique(8)
	edges = append(edges, graph.Edge{Src: 0, Dst: 8}) // weak bridge
	g := graph.FromEdges(16, edges)
	res := LabelPropagation(g, 50)
	// Each clique converges to one label.
	for v := uint32(1); v < 8; v++ {
		if res.Label[v] != res.Label[0] {
			t.Errorf("clique A not uniform: %v", res.Label[:8])
			break
		}
	}
	for v := uint32(9); v < 16; v++ {
		if res.Label[v] != res.Label[8] {
			t.Errorf("clique B not uniform: %v", res.Label[8:])
			break
		}
	}
	if res.Communities > 3 {
		t.Errorf("Communities = %d, want <= 3", res.Communities)
	}
}

func TestLabelPropagationIsolated(t *testing.T) {
	g := graph.FromEdges(4, nil)
	res := LabelPropagation(g, 10)
	if res.Communities != 4 {
		t.Errorf("Communities = %d, want 4", res.Communities)
	}
}
