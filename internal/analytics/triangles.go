package analytics

import "graphlocality/internal/graph"

// TriangleCount returns the number of triangles in the undirected view of
// g, using the standard degree-ordered adjacency-intersection algorithm:
// each triangle {a,b,c} is counted exactly once at its lowest-rank vertex
// (rank = degree order). Triangle counting is an adjacency-intersection
// workload whose memory behaviour — like SpMV's — is dominated by how
// close neighbour IDs sit, making it another consumer of reorderings.
func TriangleCount(g *graph.Graph) uint64 {
	und := g.Undirected()
	n := und.NumVertices()
	// rank orders vertices by (degree, ID); edges are directed from lower
	// to higher rank to avoid double counting.
	deg := make([]uint32, n)
	for v := uint32(0); v < n; v++ {
		deg[v] = und.OutDegree(v)
	}
	rank := make([]uint32, n)
	for i, v := range graph.VerticesByDegreeAsc(deg) {
		rank[v] = uint32(i)
	}
	// Forward adjacency: higher-rank neighbours only, sorted by ID.
	fwd := make([][]uint32, n)
	for v := uint32(0); v < n; v++ {
		for _, u := range und.OutNeighbors(v) {
			if rank[u] > rank[v] {
				fwd[v] = append(fwd[v], u)
			}
		}
	}
	var count uint64
	for v := uint32(0); v < n; v++ {
		for _, u := range fwd[v] {
			count += intersectSorted(fwd[v], fwd[u])
		}
	}
	return count
}

func intersectSorted(a, b []uint32) uint64 {
	var c uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// ClusteringCoefficient returns the global clustering coefficient:
// 3·triangles / open-plus-closed wedges.
func ClusteringCoefficient(g *graph.Graph) float64 {
	und := g.Undirected()
	var wedges uint64
	for v := uint32(0); v < und.NumVertices(); v++ {
		d := uint64(und.OutDegree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}
