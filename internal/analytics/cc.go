package analytics

import "graphlocality/internal/graph"

// CCResult holds a connected-components labeling over the undirected view.
type CCResult struct {
	// Label[v] is the component representative (the smallest vertex ID in
	// the component).
	Label []uint32
	// Components is the number of distinct components.
	Components uint32
	// Iterations is the number of propagation rounds performed.
	Iterations int
}

// ConnectedComponentsLP computes connected components by synchronous
// label propagation (the classic SpMV-shaped formulation: every vertex
// repeatedly adopts the minimum label among itself and its neighbours).
// Its per-iteration traversal is exactly the access pattern the paper's
// SpMV model studies.
func ConnectedComponentsLP(g *graph.Graph) CCResult {
	n := g.NumVertices()
	label := make([]uint32, n)
	for i := range label {
		label[i] = uint32(i)
	}
	res := CCResult{Label: label}
	changed := true
	for changed {
		changed = false
		res.Iterations++
		for v := uint32(0); v < n; v++ {
			m := label[v]
			for _, u := range g.OutNeighbors(v) {
				if label[u] < m {
					m = label[u]
				}
			}
			for _, u := range g.InNeighbors(v) {
				if label[u] < m {
					m = label[u]
				}
			}
			if m < label[v] {
				label[v] = m
				changed = true
			}
		}
	}
	res.Components = countDistinct(label)
	res.canonicalize()
	return res
}

// ThriftyCC is a structure-aware connected components inspired by Thrifty
// Label Propagation (paper ref. [59], §VIII-A): it first collapses the
// neighbourhoods of hub vertices — which connect most of a power-law
// graph — with a union-find pass over hub edges only, then finishes the
// residual low-degree structure with pointer-jumping union-find. On
// skewed graphs this touches far fewer labels than full propagation.
func ThriftyCC(g *graph.Graph) CCResult {
	n := g.NumVertices()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Union by smaller representative keeps labels canonical-ish.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}

	res := CCResult{}
	thr := g.HubThreshold()
	// Phase 1: hub edges — hubs stitch most of the graph together.
	for v := uint32(0); v < n; v++ {
		if float64(g.OutDegree(v)) > thr || float64(g.InDegree(v)) > thr {
			for _, u := range g.OutNeighbors(v) {
				union(v, u)
			}
			for _, u := range g.InNeighbors(v) {
				union(v, u)
			}
		}
	}
	res.Iterations++
	// Phase 2: the residual edges.
	for v := uint32(0); v < n; v++ {
		for _, u := range g.OutNeighbors(v) {
			union(v, u)
		}
	}
	res.Iterations++

	label := make([]uint32, n)
	for v := uint32(0); v < n; v++ {
		label[v] = find(v)
	}
	res.Label = label
	res.Components = countDistinct(label)
	res.canonicalize()
	return res
}

// canonicalize rewrites labels so each component's label is its smallest
// member ID, making results comparable across algorithms.
func (r *CCResult) canonicalize() {
	min := make(map[uint32]uint32)
	for v, l := range r.Label {
		if m, ok := min[l]; !ok || uint32(v) < m {
			min[l] = uint32(v)
		}
	}
	for v, l := range r.Label {
		r.Label[v] = min[l]
	}
}

func countDistinct(label []uint32) uint32 {
	seen := make(map[uint32]struct{}, 64)
	for _, l := range label {
		seen[l] = struct{}{}
	}
	return uint32(len(seen))
}
