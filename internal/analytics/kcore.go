package analytics

import "graphlocality/internal/graph"

// KCoreResult holds the core decomposition of the undirected view.
type KCoreResult struct {
	// Coreness[v] is the largest k such that v belongs to the k-core.
	Coreness []uint32
	// MaxCore is the degeneracy of the graph.
	MaxCore uint32
}

// KCore computes the core decomposition with the linear-time peeling
// algorithm (Batagelj–Zaveršnik): repeatedly remove the minimum-degree
// vertex; its degree at removal is its coreness. The k-core structure is
// the formal version of SlashBurn's intuition (§VI-A): slashing hubs
// peels the graph shell by shell, and the GCC's residue after a few
// iterations is the low-coreness interior.
func KCore(g *graph.Graph) KCoreResult {
	und := g.Undirected()
	n := und.NumVertices()
	res := KCoreResult{Coreness: make([]uint32, n)}
	if n == 0 {
		return res
	}

	deg := make([]uint32, n)
	maxDeg := uint32(0)
	for v := uint32(0); v < n; v++ {
		deg[v] = und.OutDegree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}

	// Bucket sort vertices by degree (bin[d] = start index of degree d).
	bin := make([]uint32, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := uint32(1); d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]uint32, n)  // position of vertex in vert
	vert := make([]uint32, n) // vertices sorted by current degree
	start := make([]uint32, maxDeg+1)
	copy(start, bin[:maxDeg+1])
	cur := make([]uint32, maxDeg+1)
	copy(cur, start)
	for v := uint32(0); v < n; v++ {
		pos[v] = cur[deg[v]]
		vert[pos[v]] = v
		cur[deg[v]]++
	}

	for i := uint32(0); i < n; i++ {
		v := vert[i]
		res.Coreness[v] = deg[v]
		if deg[v] > res.MaxCore {
			res.MaxCore = deg[v]
		}
		for _, u := range und.OutNeighbors(v) {
			if deg[u] > deg[v] {
				// Move u to the front of its degree bucket, then shrink
				// its degree.
				du := deg[u]
				pu := pos[u]
				pw := start[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				start[du]++
				deg[u]--
			}
		}
	}
	return res
}
