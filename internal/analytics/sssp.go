package analytics

import "graphlocality/internal/graph"

// WeightFunc supplies the weight of edge (u,v). Weights must be
// non-negative for the provided algorithms.
type WeightFunc func(u, v uint32) uint32

// UnitWeights weights every edge 1, making SSSP equivalent to BFS depth.
func UnitWeights(u, v uint32) uint32 { return 1 }

// HashWeights returns a deterministic pseudo-random weight in [1, max]
// derived from the edge endpoints — the repo's stand-in for weighted
// graph datasets.
func HashWeights(max uint32) WeightFunc {
	return func(u, v uint32) uint32 {
		x := uint64(u)*0x9e3779b97f4a7c15 ^ uint64(v)*0xbf58476d1ce4e5b9
		x ^= x >> 29
		return uint32(x%uint64(max)) + 1
	}
}

// Unreachable is the distance of vertices SSSP cannot reach.
const Unreachable = ^uint64(0)

// SSSPResult holds single-source shortest-path distances.
type SSSPResult struct {
	Dist []uint64
	// Iterations counts frontier rounds (Bellman-Ford steps).
	Iterations int
	// Relaxations counts performed edge relax attempts.
	Relaxations uint64
}

// SSSP computes single-source shortest paths from src over out-edges with
// the given weights using frontier-based Bellman-Ford — the worklist
// structure the paper describes for selective traversals (§II-B): sparse
// phases process only the frontier, dense phases resemble SpMV.
func SSSP(g *graph.Graph, src uint32, w WeightFunc) SSSPResult {
	n := g.NumVertices()
	res := SSSPResult{Dist: make([]uint64, n)}
	for i := range res.Dist {
		res.Dist[i] = Unreachable
	}
	if n == 0 {
		return res
	}
	res.Dist[src] = 0
	frontier := []uint32{src}
	inNext := make([]bool, n)
	for len(frontier) > 0 {
		res.Iterations++
		var next []uint32
		for _, v := range frontier {
			dv := res.Dist[v]
			for _, u := range g.OutNeighbors(v) {
				res.Relaxations++
				if nd := dv + uint64(w(v, u)); nd < res.Dist[u] {
					res.Dist[u] = nd
					if !inNext[u] {
						inNext[u] = true
						next = append(next, u)
					}
				}
			}
		}
		for _, u := range next {
			inNext[u] = false
		}
		frontier = next
	}
	return res
}
