package analytics

import (
	"testing"
	"testing/quick"

	"graphlocality/internal/gen"
	"graphlocality/internal/graph"
)

func TestKCoreTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 (2-core) with a pendant 3 attached to 0 (1-core).
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 0, Dst: 3},
	})
	res := KCore(g)
	want := []uint32{2, 2, 2, 1}
	for v, k := range res.Coreness {
		if k != want[v] {
			t.Errorf("Coreness[%d] = %d, want %d", v, k, want[v])
		}
	}
	if res.MaxCore != 2 {
		t.Errorf("MaxCore = %d", res.MaxCore)
	}
}

func TestKCoreClique(t *testing.T) {
	// A 5-clique is a 4-core throughout.
	edges := []graph.Edge{}
	for i := uint32(0); i < 5; i++ {
		for j := uint32(0); j < 5; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: i, Dst: j})
			}
		}
	}
	res := KCore(graph.FromEdges(5, edges))
	for v, k := range res.Coreness {
		if k != 4 {
			t.Fatalf("Coreness[%d] = %d, want 4", v, k)
		}
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	if KCore(graph.FromEdges(0, nil)).MaxCore != 0 {
		t.Error("empty graph MaxCore != 0")
	}
	res := KCore(graph.FromEdges(3, nil))
	for _, k := range res.Coreness {
		if k != 0 {
			t.Error("isolated vertices must have coreness 0")
		}
	}
}

// Property: coreness matches a reference iterative-peeling implementation.
func TestKCoreMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(seed%60 + 1)
		g := gen.ErdosRenyi(n, int(seed%200), seed)
		got := KCore(g)
		want := referenceKCore(g)
		for v := range want {
			if got.Coreness[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// referenceKCore peels iteratively: for k = 1,2,..., repeatedly delete
// vertices with residual degree < k.
func referenceKCore(g *graph.Graph) []uint32 {
	und := g.Undirected()
	n := und.NumVertices()
	coreness := make([]uint32, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := uint32(0); v < n; v++ {
		alive[v] = true
		deg[v] = len(und.OutNeighbors(v))
	}
	for k := uint32(1); ; k++ {
		// Peel everything below k.
		changed := true
		for changed {
			changed = false
			for v := uint32(0); v < n; v++ {
				if alive[v] && deg[v] < int(k) {
					alive[v] = false
					changed = true
					for _, u := range und.OutNeighbors(v) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
		}
		anyAlive := false
		for v := uint32(0); v < n; v++ {
			if alive[v] {
				coreness[v] = k
				anyAlive = true
			}
		}
		if !anyAlive {
			return coreness
		}
	}
}

func TestKCoreSlashBurnConnection(t *testing.T) {
	// The paper's §VI-A observation in k-core terms: power-law graphs
	// have a small dense core and a vast low-coreness periphery.
	g := gen.SocialNetwork(12, 12, 3)
	res := KCore(g)
	var lowCore int
	for _, k := range res.Coreness {
		if k <= 2 {
			lowCore++
		}
	}
	if res.MaxCore < 5 {
		t.Errorf("social network degeneracy %d suspiciously low", res.MaxCore)
	}
	if frac := float64(lowCore) / float64(len(res.Coreness)); frac < 0.2 {
		t.Errorf("only %.0f%% of vertices in the periphery — not heavy-tailed", 100*frac)
	}
}
