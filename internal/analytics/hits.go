package analytics

import (
	"math"

	"graphlocality/internal/graph"
)

// HITSResult holds hub and authority scores (Kleinberg's Hyperlink
// Induced Topic Search, the first SpMV application the paper lists in
// §II-B).
type HITSResult struct {
	Authority  []float64
	Hub        []float64
	Iterations int
}

// HITS runs the HITS power iteration: authority(v) = Σ hub(u) over
// in-neighbours; hub(v) = Σ authority(u) over out-neighbours; both
// L2-normalized per round. The authority update is a pull SpMV, the hub
// update a push-read SpMV — together they exercise both traversal
// directions of §II-F.
func HITS(g *graph.Graph, iters int) HITSResult {
	n := int(g.NumVertices())
	res := HITSResult{
		Authority: make([]float64, n),
		Hub:       make([]float64, n),
	}
	if n == 0 {
		return res
	}
	for i := range res.Hub {
		res.Hub[i] = 1
		res.Authority[i] = 1
	}
	for it := 0; it < iters; it++ {
		res.Iterations++
		// Authority from hubs (pull over CSC).
		for v := uint32(0); uint32(v) < g.NumVertices(); v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(v) {
				sum += res.Hub[u]
			}
			res.Authority[v] = sum
		}
		normalize(res.Authority)
		// Hub from authorities (read over CSR).
		for v := uint32(0); uint32(v) < g.NumVertices(); v++ {
			sum := 0.0
			for _, u := range g.OutNeighbors(v) {
				sum += res.Authority[u]
			}
			res.Hub[v] = sum
		}
		normalize(res.Hub)
	}
	return res
}

func normalize(xs []float64) {
	var norm float64
	for _, x := range xs {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range xs {
		xs[i] /= norm
	}
}
