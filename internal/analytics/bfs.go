// Package analytics implements the graph algorithms the paper's SpMV
// traversal model represents (§II-B): PageRank-style SpMV lives in
// internal/spmv; this package provides the frontier-based analytics —
// BFS, connected components, SSSP — whose dense phases behave like SpMV,
// plus HITS and label-propagation community detection. They serve as
// realistic consumers of reordered graphs: reordering changes their
// memory locality exactly as it does for SpMV.
package analytics

import (
	"graphlocality/internal/graph"
)

// BFSResult holds the outcome of a breadth-first search.
type BFSResult struct {
	// Depth[v] is the hop distance from the source, or NotReached.
	Depth []uint32
	// Parent[v] is the BFS tree parent, or graph.NoVertex for the source
	// and unreached vertices.
	Parent []uint32
	// Iterations counts frontier expansions.
	Iterations int
	// PushSteps and PullSteps count how many iterations ran in each
	// direction under the direction-optimizing heuristic.
	PushSteps, PullSteps int
}

// NotReached marks vertices the search did not reach.
const NotReached = ^uint32(0)

// BFS runs a direction-optimizing breadth-first search from src over the
// out-edges of g (Beamer-style): iterations switch from top-down (push,
// scanning the frontier's out-edges) to bottom-up (pull, scanning
// unvisited vertices' in-edges) when the frontier grows beyond 1/alpha of
// the remaining edges — mirroring the push/pull duality of §II-F.
func BFS(g *graph.Graph, src uint32) BFSResult {
	n := g.NumVertices()
	res := BFSResult{
		Depth:  make([]uint32, n),
		Parent: make([]uint32, n),
	}
	for i := range res.Depth {
		res.Depth[i] = NotReached
		res.Parent[i] = graph.NoVertex
	}
	if n == 0 {
		return res
	}
	res.Depth[src] = 0

	frontier := []uint32{src}
	visited := make([]bool, n)
	visited[src] = true
	var depth uint32

	// Direction heuristic state.
	const alpha = 14
	remainingEdges := g.NumEdges()

	for len(frontier) > 0 {
		depth++
		res.Iterations++
		// Estimate the frontier's out-edge mass.
		var frontierEdges uint64
		for _, v := range frontier {
			frontierEdges += uint64(g.OutDegree(v))
		}
		bottomUp := frontierEdges*alpha > remainingEdges
		remainingEdges -= frontierEdges

		var next []uint32
		if bottomUp {
			res.PullSteps++
			// Pull: every unvisited vertex scans its in-neighbours for a
			// frontier member.
			inFrontier := make([]bool, n)
			for _, v := range frontier {
				inFrontier[v] = true
			}
			for v := uint32(0); v < n; v++ {
				if visited[v] {
					continue
				}
				for _, u := range g.InNeighbors(v) {
					if inFrontier[u] {
						visited[v] = true
						res.Depth[v] = depth
						res.Parent[v] = u
						next = append(next, v)
						break
					}
				}
			}
		} else {
			res.PushSteps++
			for _, v := range frontier {
				for _, u := range g.OutNeighbors(v) {
					if !visited[u] {
						visited[u] = true
						res.Depth[u] = depth
						res.Parent[u] = v
						next = append(next, u)
					}
				}
			}
		}
		frontier = next
	}
	return res
}

// Reached returns the number of vertices the search reached (including
// the source).
func (r BFSResult) Reached() int {
	n := 0
	for _, d := range r.Depth {
		if d != NotReached {
			n++
		}
	}
	return n
}
