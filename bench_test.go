package graphlocality_test

// One benchmark per table and figure of the paper. Each bench runs the
// corresponding experiment harness on the Standard dataset suite (or a
// representative subset where a full sweep would dominate the run) and
// prints the paper-shaped rows once, so `go test -bench=.` both measures
// and regenerates the evaluation. See EXPERIMENTS.md for the recorded
// outputs and the paper-vs-measured comparison.

import (
	"fmt"
	"sync"
	"testing"

	"graphlocality/internal/expt"
	"graphlocality/internal/reorder"
)

var (
	sessOnce sync.Once
	sess     *expt.Session
	suite    []expt.Dataset
)

// session returns the shared memoizing session over the Standard suite so
// expensive artifacts (graphs, reorderings) are computed once across all
// benchmarks.
func session() (*expt.Session, []expt.Dataset) {
	sessOnce.Do(func() {
		sess = expt.NewSession()
		suite = expt.Suite(expt.Standard)
	})
	return sess, suite
}

// printOnce prints a rendered table on the first benchmark iteration only.
var printed sync.Map

func printOnce(key, out string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Println(out)
	}
}

func BenchmarkTableI_Datasets(b *testing.B) {
	s, ds := session()
	for i := 0; i < b.N; i++ {
		rows := expt.TableI(s, ds)
		printOnce("t1", expt.RenderTableI(rows))
	}
}

func BenchmarkTableII_Preprocessing(b *testing.B) {
	s, ds := session()
	algs := expt.StandardAlgorithms()
	for i := 0; i < b.N; i++ {
		rows := expt.TableII(s, ds, algs)
		printOnce("t2", expt.RenderTableII(rows))
	}
}

func BenchmarkTableIII_HubMisses(b *testing.B) {
	s, ds := session()
	algs := expt.StandardAlgorithms()
	// The per-vertex attributed simulation across all algorithms is the
	// most expensive sweep; run it on the social/web contrast subset.
	sub := contrastSubset(ds)
	for i := 0; i < b.N; i++ {
		rows := expt.TableIII(s, sub, algs)
		printOnce("t3", expt.RenderTableIII(rows))
	}
}

func BenchmarkTableIV_SpMV(b *testing.B) {
	s, ds := session()
	algs := expt.StandardAlgorithms()
	for i := 0; i < b.N; i++ {
		rows := expt.TableIV(s, ds, algs)
		printOnce("t4", expt.RenderTableIV(rows))
	}
}

func BenchmarkTableV_ECS(b *testing.B) {
	s, ds := session()
	algs := expt.StandardAlgorithms()
	sub := contrastSubset(ds)
	for i := 0; i < b.N; i++ {
		rows := expt.TableV(s, sub, algs)
		printOnce("t5", expt.RenderTableV(rows))
	}
}

func BenchmarkTableVI_PushPull(b *testing.B) {
	s, ds := session()
	for i := 0; i < b.N; i++ {
		rows := expt.TableVI(s, ds)
		printOnce("t6", expt.RenderTableVI(rows))
	}
}

func BenchmarkTableVII_SlashBurnPP(b *testing.B) {
	s, ds := session()
	sub := socialSubset(ds)
	for i := 0; i < b.N; i++ {
		rows := expt.TableVII(s, sub)
		printOnce("t7", expt.RenderTableVII(rows))
	}
}

func BenchmarkFig1_MissRateDist(b *testing.B) {
	s, ds := session()
	algs := expt.StandardAlgorithms()
	sub := contrastSubset(ds)
	for i := 0; i < b.N; i++ {
		for _, d := range sub {
			series := expt.Fig1(s, d, algs)
			printOnce("f1-"+d.Name, expt.RenderSeries(
				fmt.Sprintf("Fig 1 (%s): miss rate (%%) by degree", d.Name), series))
		}
	}
}

func BenchmarkFig2_SBIterations(b *testing.B) {
	s, ds := session()
	sub := socialSubset(ds)
	for i := 0; i < b.N; i++ {
		for _, d := range sub {
			snaps := expt.Fig2(s, d)
			printOnce("f2-"+d.Name, fmt.Sprintf("Fig 2 (%s):\n%s", d.Name, expt.RenderFig2(snaps)))
		}
	}
}

func BenchmarkFig3_AID(b *testing.B) {
	s, ds := session()
	sub := contrastSubset(ds)
	for i := 0; i < b.N; i++ {
		for _, d := range sub {
			series := expt.Fig3(s, d)
			printOnce("f3-"+d.Name, expt.RenderSeries(
				fmt.Sprintf("Fig 3 (%s): AID by in-degree", d.Name), series))
		}
	}
}

func BenchmarkFig4_Asymmetricity(b *testing.B) {
	s, ds := session()
	social, web := pair(b, ds)
	for i := 0; i < b.N; i++ {
		series := expt.Fig4(s, social, web)
		printOnce("f4", expt.RenderSeries("Fig 4: asymmetricity (%) by in-degree", series))
	}
}

func BenchmarkFig5_Decomposition(b *testing.B) {
	s, ds := session()
	social, web := pair(b, ds)
	for i := 0; i < b.N; i++ {
		res := expt.Fig5(s, []expt.Dataset{social, web})
		printOnce("f5", expt.RenderFig5(res))
	}
}

func BenchmarkFig6_HubCoverage(b *testing.B) {
	s, ds := session()
	for i := 0; i < b.N; i++ {
		res := expt.Fig6(s, ds)
		printOnce("f6", expt.RenderFig6(res))
	}
}

func BenchmarkEDR_RabbitOrder(b *testing.B) {
	s, ds := session()
	sub := webSubset(ds)
	for i := 0; i < b.N; i++ {
		rows := expt.EDRExperiment(s, sub)
		printOnce("edr", expt.RenderEDR(rows))
	}
}

func BenchmarkFrameworkGap(b *testing.B) {
	s, ds := session()
	sub := contrastSubset(ds)
	for i := 0; i < b.N; i++ {
		rows := expt.FrameworkGap(s, sub)
		printOnce("gap", expt.RenderGap(rows))
	}
}

// BenchmarkReorderAlgorithms measures raw preprocessing throughput of each
// RA on the first social dataset (an ablation supplement to Table II).
func BenchmarkReorderAlgorithms(b *testing.B) {
	s, ds := session()
	g := s.Graph(ds[0])
	for _, alg := range []reorder.Algorithm{
		reorder.Wrap(reorder.DegreeSort{}), reorder.Wrap(reorder.HubSort{}),
		reorder.Wrap(reorder.DBG{}),
		reorder.NewSlashBurnPP(), reorder.NewRabbitOrder(),
	} {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reorder.Perm(alg, g)
			}
		})
	}
}

func contrastSubset(ds []expt.Dataset) []expt.Dataset {
	var social, web *expt.Dataset
	for i := range ds {
		if ds[i].Kind == expt.SocialNetwork && social == nil {
			social = &ds[i]
		}
		if ds[i].Kind == expt.WebGraph && web == nil {
			web = &ds[i]
		}
	}
	var out []expt.Dataset
	if social != nil {
		out = append(out, *social)
	}
	if web != nil {
		out = append(out, *web)
	}
	return out
}

func socialSubset(ds []expt.Dataset) []expt.Dataset {
	var out []expt.Dataset
	for _, d := range ds {
		if d.Kind == expt.SocialNetwork {
			out = append(out, d)
		}
	}
	return out
}

func webSubset(ds []expt.Dataset) []expt.Dataset {
	for _, d := range ds {
		if d.Kind == expt.WebGraph {
			return []expt.Dataset{d}
		}
	}
	return nil
}

func pair(b *testing.B, ds []expt.Dataset) (expt.Dataset, expt.Dataset) {
	sub := contrastSubset(ds)
	if len(sub) < 2 {
		b.Fatal("suite lacks social/web pair")
	}
	return sub[0], sub[1]
}
